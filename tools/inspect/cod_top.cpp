// cod_top — live, read-only cluster health dashboard.
//
// Joins a running COD rack as one more LP (CB discovery does the rest),
// subscribes ONLY `cod.telemetry`, publishes NOTHING — attaching and
// detaching a cod_top must be invisible to the cluster's data plane. The
// screen is the same renderTable() the instructor station shows (with
// the tick-phase hot column when nodes profile), plus the alarm tail,
// redrawn in place with ANSI every --refresh seconds.
//
//   cod_top --base-port=47000 --host=15
//   cod_top --base-port=47000 --host=15 --refresh=0.5 --duration=30
//
// --host must be a slot no real node occupies (the last slot of the
// rack's --max-hosts plan is the convention). --duration=0 runs until
// interrupted; --frames=N exits after N redraws (smoke tests).
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>

#include "core/cb.hpp"
#include "net/udp.hpp"
#include "telemetry/monitor.hpp"
#include "tools/soak/soak_common.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void onSignal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  using namespace cod;
  try {
    const soak::Args args(argc, argv);

    net::UdpConfig ucfg;
    ucfg.bindIp = args.str("bind-ip", "127.0.0.1");
    ucfg.hostIps = soak::splitCsv(args.str("host-ips", ""));
    ucfg.basePort =
        static_cast<std::uint16_t>(std::stoul(args.required("base-port")));
    ucfg.portsPerHost =
        static_cast<std::uint16_t>(args.integer("ports-per-host", 4));
    ucfg.maxHosts = static_cast<std::uint16_t>(args.integer("max-hosts", 16));
    const auto host = static_cast<net::HostId>(
        args.integer("host", ucfg.maxHosts - 1));
    const auto cbPort = static_cast<std::uint16_t>(args.integer("cb-port", 1));

    const double refresh = args.num("refresh", 1.0);
    const double duration = args.num("duration", 0.0);
    const long long maxFrames = args.integer("frames", 0);
    const bool plain = args.has("plain");  // no ANSI clear (piped output)

    auto udp = std::make_unique<net::UdpTransport>(ucfg, host, cbPort);
    std::fprintf(stderr, "cod_top: joined %s:%u (host %u, read-only)\n",
                 ucfg.bindIp.c_str(), udp->boundUdpPort(), host);

    core::CommunicationBackbone::Config cbCfg;
    cbCfg.broadcastIntervalSec = 0.05;
    cbCfg.refreshIntervalSec = 0.5;
    core::CommunicationBackbone cb(args.str("name", "cod-top"),
                                   std::move(udp), cbCfg);

    telemetry::MonitorConfig mc;
    mc.expectedIntervalSec = args.num("expected-interval", 1.0);
    mc.silentAfterIntervals = args.num("silent-after", 3.0);
    telemetry::HealthMonitor mon(mc);
    mon.bind(cb);  // subscribe-only; this process never publishes a class

    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);

    double nextDraw = 0.0;
    long long frames = 0;
    double now = 0.0;
    while (g_stop == 0 && (duration <= 0.0 || now < duration)) {
      now = soak::wallSec();
      cb.tick(now);
      if (now >= nextDraw) {
        nextDraw = now + refresh;
        ++frames;
        if (!plain) std::fputs("\x1b[2J\x1b[H", stdout);
        std::fputs(mon.renderTable().c_str(), stdout);
        std::fputs(mon.renderAlarms(8).c_str(), stdout);
        std::fflush(stdout);
        if (maxFrames > 0 && frames >= maxFrames) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cod_top: %s\n", e.what());
    return 2;
  }
}
