// Shard-boundary tests of the CB routing core (src/core/shard.hpp): the
// class-name hash that places every object class on exactly one shard,
// colliding classes sharing a shard without cross-talk, rediscovery
// after a channel timeout landing back on the owning shard, and the
// headline guarantee — any shard count is byte-identical on the wire to
// shards=1.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/cluster.hpp"
#include "core/protocol.hpp"
#include "net/simnet.hpp"
#include "net/transport.hpp"

namespace cod::core {
namespace {

/// Minimal publisher LP.
class Pub : public LogicalProcess {
 public:
  explicit Pub(std::string cls) : LogicalProcess("pub"), cls_(std::move(cls)) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.publishObjectClass(*this, cls_);
  }
  void send(double value, double ts) {
    AttributeSet a;
    a.set("v", value);
    backbone()->updateAttributeValues(handle, a, ts);
  }
  PublicationHandle handle = kInvalidHandle;

 private:
  std::string cls_;
};

/// Minimal subscriber LP counting reflections per class.
class Sub : public LogicalProcess {
 public:
  explicit Sub(std::string cls) : LogicalProcess("sub"), cls_(std::move(cls)) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.subscribeObjectClass(*this, cls_);
  }
  void reflectAttributeValues(const std::string& className,
                              const AttributeSet& attrs,
                              double /*timestamp*/) override {
    classNames.push_back(className);
    values.push_back(attrs.getDouble("v"));
  }
  SubscriptionHandle handle = kInvalidHandle;
  std::vector<std::string> classNames;
  std::vector<double> values;

 private:
  std::string cls_;
};

// ---- the hash is the routing contract -----------------------------------

/// classNameHash is 32-bit FNV-1a. The exact values are load-bearing:
/// every node of a rack derives a decoded discovery message's owning
/// shard from this hash independently, so a silent algorithm change would
/// strand cross-version racks in hash disagreement. Pin the constants.
TEST(ClassNameHash, IsPinnedFnv1a32) {
  EXPECT_EQ(classNameHash(""), 2166136261u);  // FNV offset basis
  EXPECT_EQ(classNameHash("crane.state"), 3399086397u);
  EXPECT_EQ(classNameHash("mass.c0"), 3774275150u);
  EXPECT_EQ(classNameHash("mass.c1"), 3791052769u);
  // Reference FNV-1a loop, so a mismatch above points at the algorithm
  // rather than a stale literal.
  const std::string_view probe = "soak.probe.a";
  std::uint32_t h = 2166136261u;
  for (const char c : probe) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 16777619u;
  }
  EXPECT_EQ(classNameHash(probe), h);
  EXPECT_EQ(classNameHash(probe), 3763282346u);
}

TEST(ClassNameHash, ShardOfClampsAndPartitions) {
  net::SimNetwork net(/*seed=*/1);
  const net::HostId h0 = net.addHost("solo");
  CommunicationBackbone::Config zero;
  zero.shards = 0;  // documented clamp: 0 behaves as 1
  CommunicationBackbone cb("solo", net.bind(h0, 1), zero);
  EXPECT_EQ(cb.shardCount(), 1u);
  EXPECT_EQ(cb.shardOf("anything"), 0u);
}

// ---- colliding classes share a shard, not traffic -----------------------

TEST(CbSharding, CollidingClassesShareAShardWithoutCrossTalk) {
  // With 4 shards, "mass.c0" and "soak.probe.a" collide (both hash to
  // shard 2) while "mass.c1" lands elsewhere — see the pinned hashes.
  CodCluster::Config ccfg;
  ccfg.cb.shards = 4;
  CodCluster cluster(ccfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  const std::uint32_t shared = cbA.shardOf("mass.c0");
  ASSERT_EQ(shared, cbA.shardOf("soak.probe.a"));
  ASSERT_NE(shared, cbA.shardOf("mass.c1"));

  // Publisher of one colliding class, subscribers of both + the odd one.
  Pub pub("mass.c0");
  pub.bind(cbA);
  Sub hit("mass.c0"), collider("soak.probe.a"), elsewhere("mass.c1");
  hit.bind(cbB);
  collider.bind(cbB);
  elsewhere.bind(cbB);

  // Both colliding registrations live on the same shard of B; the third
  // does not ride along.
  EXPECT_EQ(cbB.shardLoad(shared).subscriptions, 2u);
  EXPECT_EQ(cbB.shardLoad(cbB.shardOf("mass.c1")).subscriptions, 1u);

  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(hit.handle); }, 2.0));
  pub.send(7.5, 0.1);
  cluster.step(0.2);

  // Exact-match semantics survive the shared shard: only the same-name
  // subscriber connects and reflects.
  ASSERT_EQ(hit.values.size(), 1u);
  EXPECT_DOUBLE_EQ(hit.values[0], 7.5);
  EXPECT_FALSE(cbB.connected(collider.handle));
  EXPECT_FALSE(cbB.connected(elsewhere.handle));
  EXPECT_TRUE(collider.values.empty());
  EXPECT_TRUE(elsewhere.values.empty());

  // The channel bookkeeping sits on the owning shard on both sides.
  EXPECT_EQ(cbA.shardLoad(shared).outChannels, 1u);
  EXPECT_EQ(cbB.shardLoad(shared).inChannels, 1u);
}

// ---- rediscovery lands back on the owning shard -------------------------

TEST(CbSharding, RediscoveryAfterTimeoutStaysOnOwningShard) {
  CodCluster::Config ccfg;
  ccfg.cb.shards = 3;
  ccfg.cb.channelTimeoutSec = 0.5;
  ccfg.cb.heartbeatIntervalSec = 0.1;
  CodCluster cluster(ccfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  const std::string cls = "crane.state";
  const std::uint32_t owner = cbB.shardOf(cls);

  Pub pub(cls);
  pub.bind(cbA);
  Sub sub(cls);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0));
  ASSERT_EQ(cbB.shardLoad(owner).inChannels, 1u);

  // Partition the pair until the subscriber's channel times out.
  cluster.network().setPartitioned(0, 1, true);
  ASSERT_TRUE(cluster.runUntil([&] { return !cbB.connected(sub.handle); },
                               cluster.now() + 3.0));
  EXPECT_EQ(cbB.shardLoad(owner).inChannels, 0u);
  // The subscription entry itself never moves: still on the owning shard,
  // broadcasting again.
  EXPECT_EQ(cbB.shardLoad(owner).subscriptions, 1u);

  // Heal: rediscovery reconnects, and the fresh channel is registered on
  // the same shard (not wherever a stale index pointed).
  cluster.network().setPartitioned(0, 1, false);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); },
                               cluster.now() + 3.0));
  EXPECT_EQ(cbB.shardLoad(owner).inChannels, 1u);
  pub.send(3.25, cluster.now());
  cluster.step(0.2);
  ASSERT_FALSE(sub.values.empty());
  EXPECT_DOUBLE_EQ(sub.values.back(), 3.25);
}

// ---- the wire-identity guarantee ----------------------------------------

/// Transport decorator that journals every outbound datagram (kind, dst,
/// bytes) so two runs can be compared datagram-for-datagram.
class TapTransport final : public net::Transport {
 public:
  TapTransport(std::unique_ptr<net::Transport> inner,
               std::vector<std::vector<std::uint8_t>>* log)
      : inner_(std::move(inner)), log_(log) {}

  net::NodeAddr localAddress() const override {
    return inner_->localAddress();
  }
  void send(const net::NodeAddr& dst,
            std::span<const std::uint8_t> bytes) override {
    journal(0, dst.host, dst.port, bytes);
    inner_->send(dst, bytes);
  }
  void broadcast(std::uint16_t port,
                 std::span<const std::uint8_t> bytes) override {
    journal(1, 0, port, bytes);
    inner_->broadcast(port, bytes);
  }
  std::optional<net::Datagram> receive() override { return inner_->receive(); }
  const net::TransportStats* stats() const override { return inner_->stats(); }

 private:
  void journal(std::uint8_t kind, net::HostId host, std::uint16_t port,
               std::span<const std::uint8_t> bytes) {
    std::vector<std::uint8_t> entry{kind,
                                    static_cast<std::uint8_t>(host & 0xFF),
                                    static_cast<std::uint8_t>(port & 0xFF)};
    entry.insert(entry.end(), bytes.begin(), bytes.end());
    log_->push_back(std::move(entry));
  }

  std::unique_ptr<net::Transport> inner_;
  std::vector<std::vector<std::uint8_t>>* log_;
};

/// Drive a lossy two-node mesh of several classes (spanning shards, both
/// QoS levels, both directions) and journal every datagram either CB puts
/// on the wire. `shards` is the only variable between runs.
std::vector<std::vector<std::uint8_t>> runTapped(std::uint32_t shards) {
  net::SimNetwork net(/*seed=*/17);
  net::LinkModel lossy = net.defaultLink();
  lossy.lossRate = 0.15;  // loss exercises retransmit + rediscovery paths
  net.setDefaultLink(lossy);
  std::vector<std::vector<std::uint8_t>> log;
  const net::HostId h0 = net.addHost("alpha");
  const net::HostId h1 = net.addHost("bravo");
  CommunicationBackbone::Config cfg;
  cfg.shards = shards;
  CommunicationBackbone cbA(
      "alpha", std::make_unique<TapTransport>(net.bind(h0, 1), &log), cfg);
  CommunicationBackbone cbB(
      "bravo", std::make_unique<TapTransport>(net.bind(h1, 1), &log), cfg);

  // Classes chosen to span shards at any tested count; reliable + best
  // effort; traffic in both directions.
  Pub pa1("mass.c0"), pa2("crane.state");
  Pub pb1("mass.c1");
  pa1.bind(cbA);
  pa2.bind(cbA);
  pb1.bind(cbB);
  Sub sb1("mass.c0"), sb2("crane.state");
  Sub sa1("mass.c1");
  sb1.bind(cbB);
  sb2.bind(cbB);
  sa1.bind(cbA);

  int i = 0;
  for (double t = 0.0; t < 4.0; t += 0.005) {
    net.advance(0.005);
    if (++i % 4 == 0) {
      pa1.send(i, t);
      pb1.send(-i, t);
    }
    if (i % 16 == 0) pa2.send(0.5 * i, t);
    cbA.tick(net.now());
    cbB.tick(net.now());
  }
  return log;
}

TEST(CbSharding, AnyShardCountIsByteIdenticalToOneShard) {
  const auto baseline = runTapped(1);
  ASSERT_FALSE(baseline.empty());
  for (const std::uint32_t shards : {2u, 5u}) {
    const auto sharded = runTapped(shards);
    ASSERT_EQ(baseline.size(), sharded.size()) << "shards=" << shards;
    for (std::size_t i = 0; i < baseline.size(); ++i)
      ASSERT_EQ(baseline[i], sharded[i])
          << "datagram " << i << " shards=" << shards;
  }
}

// ---- load accounting across shards --------------------------------------

TEST(CbSharding, ShardLoadSumsToTheWholeTable) {
  CodCluster::Config ccfg;
  ccfg.cb.shards = 4;
  CodCluster cluster(ccfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  std::vector<std::unique_ptr<Pub>> pubs;
  std::vector<std::unique_ptr<Sub>> subs;
  constexpr int kClasses = 32;
  for (int k = 0; k < kClasses; ++k) {
    const std::string cls = "load.c" + std::to_string(k);
    pubs.push_back(std::make_unique<Pub>(cls));
    pubs.back()->bind(cbA);
    subs.push_back(std::make_unique<Sub>(cls));
    subs.back()->bind(cbB);
  }
  cluster.step(2.0);

  CbShardLoad totalA{}, totalB{};
  std::size_t populatedShards = 0;
  for (std::uint32_t s = 0; s < cbA.shardCount(); ++s) {
    const CbShardLoad a = cbA.shardLoad(s);
    const CbShardLoad b = cbB.shardLoad(s);
    totalA.publications += a.publications;
    totalA.outChannels += a.outChannels;
    totalB.subscriptions += b.subscriptions;
    totalB.inChannels += b.inChannels;
    if (a.publications > 0) ++populatedShards;
    // Each shard's channels track its own registrations, never another
    // shard's: one subscriber per class means counts match exactly.
    EXPECT_EQ(a.outChannels, a.publications) << "shard " << s;
    EXPECT_EQ(b.inChannels, b.subscriptions) << "shard " << s;
  }
  EXPECT_EQ(totalA.publications, static_cast<std::size_t>(kClasses));
  EXPECT_EQ(totalA.outChannels, static_cast<std::size_t>(kClasses));
  EXPECT_EQ(totalB.subscriptions, static_cast<std::size_t>(kClasses));
  EXPECT_EQ(totalB.inChannels, static_cast<std::size_t>(kClasses));
  // 32 FNV-hashed names across 4 shards: every shard sees work.
  EXPECT_EQ(populatedShards, cbA.shardCount());
}

}  // namespace
}  // namespace cod::core
