#include "crane/dashboard.hpp"
#include "crane/dynamics.hpp"
#include "crane/kinematics.hpp"
#include "crane/safety.hpp"

#include <gtest/gtest.h>

namespace cod::crane {
namespace {

using math::deg2rad;
using math::Vec3;

TEST(Kinematics, BoomTipAtZeroSlewPointsForward) {
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = 0.0;  // horizontal boom
  s.boomLengthM = 10.0;
  s.slewAngleRad = 0.0;
  const Vec3 pivot = kin.boomPivot(s);
  const Vec3 tip = kin.boomTip(s);
  EXPECT_NEAR(tip.x - pivot.x, 10.0, 1e-9);
  EXPECT_NEAR(tip.y - pivot.y, 0.0, 1e-9);
  EXPECT_NEAR(tip.z - pivot.z, 0.0, 1e-9);
}

TEST(Kinematics, LuffRaisesTip) {
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = deg2rad(60.0);
  s.boomLengthM = 10.0;
  const Vec3 pivot = kin.boomPivot(s);
  const Vec3 tip = kin.boomTip(s);
  EXPECT_NEAR(tip.z - pivot.z, 10.0 * std::sin(deg2rad(60.0)), 1e-9);
}

TEST(Kinematics, SlewRotatesTipAroundAxis) {
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = deg2rad(45.0);
  s.boomLengthM = 12.0;
  s.slewAngleRad = deg2rad(90.0);
  const Vec3 pivot = kin.boomPivot(s);
  const Vec3 tip = kin.boomTip(s);
  // At 90 deg slew the tip offset is along +y of the carrier.
  EXPECT_NEAR(tip.x - pivot.x, 0.0, 1e-9);
  EXPECT_GT(tip.y - pivot.y, 5.0);
}

TEST(Kinematics, CarrierPoseCarriesTheBoom) {
  CraneKinematics kin;
  CraneState s;
  s.carrierPosition = {100, 50, 2};
  s.carrierHeadingRad = deg2rad(90.0);
  s.boomPitchRad = 0.0;
  s.boomLengthM = 10.0;
  const Vec3 tip = kin.boomTip(s);
  // Heading +90 deg: boom now points along +y in the world.
  EXPECT_NEAR(tip.y, 50.0 - 1.0 + 10.0, 1e-6);  // pivot offset x=-1 rotates to y
}

TEST(Kinematics, HookHangsStraightDown) {
  CraneKinematics kin;
  CraneState s;
  s.cableLengthM = 7.0;
  const Vec3 tip = kin.boomTip(s);
  const Vec3 hook = kin.hookRestPosition(s);
  EXPECT_NEAR(hook.x, tip.x, 1e-12);
  EXPECT_NEAR(hook.y, tip.y, 1e-12);
  EXPECT_NEAR(tip.z - hook.z, 7.0, 1e-12);
}

TEST(Kinematics, WorkingRadiusGrowsWithLengthShrinksWithLuff) {
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = deg2rad(45.0);
  s.boomLengthM = 10.0;
  const double base = kin.workingRadius(s);
  s.boomLengthM = 15.0;
  EXPECT_GT(kin.workingRadius(s), base);
  s.boomLengthM = 10.0;
  s.boomPitchRad = deg2rad(75.0);
  EXPECT_LT(kin.workingRadius(s), base);
}

TEST(JointDynamics, RespondsOnlyWithEngineOn) {
  CraneJointDynamics dyn;
  CraneState s;
  CraneControls c;
  c.joystickSlew = 1.0;
  s.engineOn = false;
  const double slew0 = s.slewAngleRad;
  for (int i = 0; i < 100; ++i) dyn.step(s, c, 0.02);
  EXPECT_NEAR(s.slewAngleRad, slew0, 1e-9);
  s.engineOn = true;
  for (int i = 0; i < 100; ++i) dyn.step(s, c, 0.02);
  EXPECT_GT(s.slewAngleRad, slew0 + 0.1);
}

TEST(JointDynamics, RateLimitsHold) {
  CraneJointDynamics dyn;
  CraneState s;
  s.engineOn = true;
  CraneControls c;
  c.joystickSlew = 1.0;
  double prev = s.slewAngleRad;
  for (int i = 0; i < 200; ++i) {
    dyn.step(s, c, 0.02);
    const double rate = math::angleDiff(s.slewAngleRad, prev) / 0.02;
    EXPECT_LE(std::abs(rate), dyn.limits().maxSlewRateRad + 1e-9);
    prev = s.slewAngleRad;
  }
}

TEST(JointDynamics, JointRangesClamp) {
  CraneJointDynamics dyn;
  CraneState s;
  s.engineOn = true;
  CraneControls c;
  c.joystickLuff = 1.0;
  c.joystickTelescope = 1.0;
  c.joystickHoist = 1.0;
  for (int i = 0; i < 5000; ++i) dyn.step(s, c, 0.02);
  EXPECT_NEAR(s.boomPitchRad, dyn.limits().boomPitchMaxRad, 1e-9);
  EXPECT_NEAR(s.boomLengthM, dyn.limits().boomLengthMaxM, 1e-9);
  EXPECT_NEAR(s.cableLengthM, dyn.limits().cableMaxM, 1e-9);
  c.joystickLuff = -1.0;
  c.joystickTelescope = -1.0;
  c.joystickHoist = -1.0;
  for (int i = 0; i < 5000; ++i) dyn.step(s, c, 0.02);
  EXPECT_NEAR(s.boomPitchRad, dyn.limits().boomPitchMinRad, 1e-9);
  EXPECT_NEAR(s.boomLengthM, dyn.limits().boomLengthMinM, 1e-9);
  EXPECT_NEAR(s.cableLengthM, dyn.limits().cableMinM, 1e-9);
}

TEST(EngineModel, IdleAndDemandResponse) {
  EngineModel e;
  for (int i = 0; i < 500; ++i) e.step(true, 0.0, 0.02);
  EXPECT_NEAR(e.rpm(), 800.0, 20.0);  // idle
  for (int i = 0; i < 500; ++i) e.step(true, 1.0, 0.02);
  EXPECT_NEAR(e.rpm(), 2200.0, 50.0);  // full demand
  for (int i = 0; i < 2000; ++i) e.step(false, 0.0, 0.02);
  EXPECT_DOUBLE_EQ(e.rpm(), 0.0);
  EXPECT_FALSE(e.on());
}

TEST(Safety, BoomOvershootAlarm) {
  SafetyEnvelope env;
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = deg2rad(45.0);
  EXPECT_FALSE(env.assess(s, kin, 0.0).alarms.active(Alarm::kBoomOvershoot));
  s.boomPitchRad = deg2rad(5.1);  // below the safe minimum of 15 deg
  EXPECT_TRUE(env.assess(s, kin, 0.0).alarms.active(Alarm::kBoomOvershoot));
  s.boomPitchRad = deg2rad(79.5);  // above the safe maximum of 78 deg
  EXPECT_TRUE(env.assess(s, kin, 0.0).alarms.active(Alarm::kBoomOvershoot));
}

TEST(Safety, OverloadUsesLoadMoment) {
  SafetyEnvelope env;  // rated 90000 kg*m
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = deg2rad(30.0);
  s.boomLengthM = 20.0;  // radius ~ 17.3 m
  s.hookLoadKg = 3000.0;  // ~52 t*m: fine
  auto a = env.assess(s, kin, 0.0);
  EXPECT_FALSE(a.alarms.active(Alarm::kOverload));
  EXPECT_GT(a.momentUtilisation, 0.3);
  s.hookLoadKg = 8000.0;  // ~139 t*m: overload
  a = env.assess(s, kin, 0.0);
  EXPECT_TRUE(a.alarms.active(Alarm::kOverload));
  EXPECT_GT(a.momentUtilisation, 1.0);
}

TEST(Safety, TipoverAlarmFromRolloverIndex) {
  SafetyEnvelope env;
  CraneKinematics kin;
  CraneState s;
  EXPECT_FALSE(env.assess(s, kin, 0.3).alarms.active(Alarm::kTipover));
  EXPECT_TRUE(env.assess(s, kin, 0.7).alarms.active(Alarm::kTipover));
}

TEST(Safety, OverspeedOnlyWithCargo) {
  SafetyEnvelope env;
  CraneKinematics kin;
  CraneState s;
  s.carrierSpeedMps = 5.0;
  s.cargoAttached = false;
  EXPECT_FALSE(env.assess(s, kin, 0.0).alarms.active(Alarm::kOverspeed));
  s.cargoAttached = true;
  EXPECT_TRUE(env.assess(s, kin, 0.0).alarms.active(Alarm::kOverspeed));
}

TEST(Safety, SlewZoneAlarmWhenConfigured) {
  SafetyLimits limits;
  limits.slewZoneCenterRad = math::kPi;
  limits.slewZoneHalfWidthRad = deg2rad(20.0);
  SafetyEnvelope env(limits);
  CraneKinematics kin;
  CraneState s;
  s.slewAngleRad = math::kPi - deg2rad(10.0);  // inside the forbidden arc
  EXPECT_TRUE(env.assess(s, kin, 0.0).alarms.active(Alarm::kSlewZone));
  s.slewAngleRad = 0.0;
  EXPECT_FALSE(env.assess(s, kin, 0.0).alarms.active(Alarm::kSlewZone));
}

TEST(AlarmSet, BitsRoundTripAndCount) {
  AlarmSet a;
  a.raise(Alarm::kOverload);
  a.raise(Alarm::kTipover);
  EXPECT_TRUE(a.any());
  EXPECT_EQ(a.count(), 2u);
  const AlarmSet b = AlarmSet::fromBits(a.bits());
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.list().size(), 2u);
  EXPECT_FALSE(AlarmSet{}.any());
}

TEST(Dashboard, MetersTrackState) {
  Dashboard d;
  CraneState s;
  s.engineOn = true;
  s.engineRpm = 1500.0;
  s.carrierSpeedMps = 5.0;
  s.cableLengthM = 12.5;
  d.updateInstruments(s, {}, 0.4);
  EXPECT_DOUBLE_EQ(d.meterValue(Meter::kEngineRpm), 1500.0);
  EXPECT_DOUBLE_EQ(d.meterValue(Meter::kSpeed), 18.0);  // km/h
  EXPECT_DOUBLE_EQ(d.meterValue(Meter::kLoadMomentPct), 40.0);
  EXPECT_DOUBLE_EQ(d.meterValue(Meter::kCableLength), 12.5);
}

TEST(Dashboard, StuckFaultFreezesDisplay) {
  Dashboard d;
  CraneState s;
  s.engineOn = true;
  s.engineRpm = 1000.0;
  d.updateInstruments(s, {}, 0.0);
  d.injectFault(Meter::kEngineRpm, MeterFault::kStuck);
  s.engineRpm = 2000.0;
  d.updateInstruments(s, {}, 0.0);
  EXPECT_DOUBLE_EQ(d.meterValue(Meter::kEngineRpm), 2000.0);     // truth
  EXPECT_DOUBLE_EQ(d.displayedValue(Meter::kEngineRpm), 1000.0);  // needle
  d.injectFault(Meter::kEngineRpm, MeterFault::kNone);
  EXPECT_DOUBLE_EQ(d.displayedValue(Meter::kEngineRpm), 2000.0);
}

TEST(Dashboard, DeadFaultReadsZero) {
  Dashboard d;
  CraneState s;
  s.cableLengthM = 9.0;
  d.updateInstruments(s, {}, 0.0);
  d.injectFault(Meter::kCableLength, MeterFault::kDead);
  EXPECT_DOUBLE_EQ(d.displayedValue(Meter::kCableLength), 0.0);
  EXPECT_EQ(d.fault(Meter::kCableLength), MeterFault::kDead);
}

TEST(Dashboard, AlarmLampsMirrorAssessment) {
  Dashboard d;
  AlarmSet alarms;
  alarms.raise(Alarm::kOverload);
  d.updateInstruments({}, alarms, 1.2);
  EXPECT_TRUE(d.lampActive(Alarm::kOverload));
  EXPECT_FALSE(d.lampActive(Alarm::kTipover));
}

TEST(Dashboard, FuelBurnsOnlyWithEngine) {
  Dashboard d;
  CraneState off;
  off.engineOn = false;
  d.updateInstruments(off, {}, 0.0);
  d.consumeFuel(1000.0);
  EXPECT_DOUBLE_EQ(d.fuel(), 1.0);
  CraneState on;
  on.engineOn = true;
  d.updateInstruments(on, {}, 0.0);
  d.consumeFuel(4500.0);
  EXPECT_NEAR(d.fuel(), 0.5, 0.01);
  d.refuel();
  EXPECT_DOUBLE_EQ(d.fuel(), 1.0);
}

TEST(Names, AllEnumsHaveNames) {
  for (std::size_t i = 0; i < kAlarmCount; ++i)
    EXPECT_STRNE(alarmName(static_cast<Alarm>(i)), "?");
  for (std::size_t i = 0; i < kMeterCount; ++i)
    EXPECT_STRNE(meterName(static_cast<Meter>(i)), "?");
}

}  // namespace
}  // namespace cod::crane
