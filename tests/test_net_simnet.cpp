#include "net/simnet.hpp"

#include <gtest/gtest.h>

namespace cod::net {
namespace {

std::vector<std::uint8_t> bytes(std::initializer_list<std::uint8_t> b) {
  return {b};
}

class SimNetTest : public ::testing::Test {
 protected:
  SimNetwork net{1};
  HostId a = net.addHost("a");
  HostId b = net.addHost("b");
};

TEST_F(SimNetTest, UnicastDeliversAfterLatency) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  ta->send({b, 1}, bytes({1, 2, 3}));
  EXPECT_FALSE(tb->receive().has_value());  // not delivered yet
  net.advance(0.001);  // default latency is 200 us
  const auto d = tb->receive();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload, bytes({1, 2, 3}));
  EXPECT_EQ(d->src, (NodeAddr{a, 1}));
  EXPECT_EQ(d->dst, (NodeAddr{b, 1}));
}

TEST_F(SimNetTest, SameHostDeliveryIsImmediate) {
  auto t1 = net.bind(a, 1);
  auto t2 = net.bind(a, 2);
  t1->send({a, 2}, bytes({9}));
  net.advance(0.0);
  ASSERT_TRUE(t2->receive().has_value());
}

TEST_F(SimNetTest, FifoOrderPreserved) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  for (std::uint8_t i = 0; i < 10; ++i) ta->send({b, 1}, bytes({i}));
  net.advance(1.0);
  for (std::uint8_t i = 0; i < 10; ++i) {
    const auto d = tb->receive();
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->payload[0], i);
  }
}

TEST_F(SimNetTest, BroadcastReachesAllBoundPortsExceptSender) {
  const HostId c = net.addHost("c");
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  auto tc = net.bind(c, 1);
  auto tcOther = net.bind(c, 2);  // different port: must not hear it
  ta->broadcast(1, bytes({7}));
  net.advance(0.01);
  EXPECT_TRUE(tb->receive().has_value());
  EXPECT_TRUE(tc->receive().has_value());
  EXPECT_FALSE(tcOther->receive().has_value());
  EXPECT_FALSE(ta->receive().has_value());  // no self-delivery
}

TEST_F(SimNetTest, SendToUnboundAddressIsDropped) {
  auto ta = net.bind(a, 1);
  ta->send({b, 9}, bytes({1}));
  net.advance(1.0);
  EXPECT_EQ(net.stats().packetsDropped, 1u);
}

TEST_F(SimNetTest, PartitionBlocksBothDirections) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  net.setPartitioned(a, b, true);
  ta->send({b, 1}, bytes({1}));
  tb->send({a, 1}, bytes({2}));
  net.advance(1.0);
  EXPECT_FALSE(ta->receive().has_value());
  EXPECT_FALSE(tb->receive().has_value());
  net.setPartitioned(a, b, false);
  ta->send({b, 1}, bytes({3}));
  net.advance(1.0);
  EXPECT_TRUE(tb->receive().has_value());
}

TEST_F(SimNetTest, LossRateDropsDeterministically) {
  LinkModel lossy;
  lossy.lossRate = 0.5;
  net.setDefaultLink(lossy);
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  for (int i = 0; i < 1000; ++i) ta->send({b, 1}, bytes({1}));
  net.advance(10.0);
  int received = 0;
  while (tb->receive()) ++received;
  EXPECT_GT(received, 400);
  EXPECT_LT(received, 600);

  // Determinism: a second network with the same seed drops the same count.
  SimNetwork net2(1);
  const HostId a2 = net2.addHost("a");
  const HostId b2 = net2.addHost("b");
  net2.setDefaultLink(lossy);
  auto ta2 = net2.bind(a2, 1);
  auto tb2 = net2.bind(b2, 1);
  for (int i = 0; i < 1000; ++i) ta2->send({b2, 1}, bytes({1}));
  net2.advance(10.0);
  int received2 = 0;
  while (tb2->receive()) ++received2;
  EXPECT_EQ(received, received2);
}

TEST_F(SimNetTest, BandwidthSerializesLargePackets) {
  LinkModel slow;
  slow.latencySec = 0.0;
  slow.bandwidthBytesPerSec = 1000.0;  // 1 KB/s
  net.setDefaultLink(slow);
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  const std::vector<std::uint8_t> big(500, 0xAA);  // 0.5 s of line time
  ta->send({b, 1}, big);
  ta->send({b, 1}, big);
  net.advance(0.4);
  EXPECT_FALSE(tb->receive().has_value());  // first still serializing
  net.advance(0.2);
  EXPECT_TRUE(tb->receive().has_value());   // first done at 0.5 s
  EXPECT_FALSE(tb->receive().has_value());  // second queued behind it
  net.advance(0.5);
  EXPECT_TRUE(tb->receive().has_value());
}

TEST_F(SimNetTest, JitterInvertsPacketOrderDeterministically) {
  // The reorder blind spot the reliable layer defends against: per-packet
  // jitter is sampled independently, so a later send can overtake an
  // earlier one. Deterministic by seed — this is a proof, not a maybe.
  LinkModel jittery;
  jittery.latencySec = 100e-6;
  jittery.jitterSec = 5e-3;  // jitter >> spacing between sends
  net.setLink(a, b, jittery);
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  const int kCount = 32;
  for (std::uint8_t i = 0; i < kCount; ++i) ta->send({b, 1}, bytes({i}));
  net.advance(1.0);
  std::vector<std::uint8_t> order;
  while (auto d = tb->receive()) order.push_back(d->payload[0]);
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kCount));  // no loss
  int inversions = 0;
  for (std::size_t i = 1; i < order.size(); ++i)
    if (order[i] < order[i - 1]) ++inversions;
  EXPECT_GT(inversions, 0) << "seed 1 must scramble back-to-back sends";

  // Same seed, same scramble: the inversion pattern is reproducible.
  SimNetwork net2(1);
  const HostId a2 = net2.addHost("a");
  const HostId b2 = net2.addHost("b");
  net2.setLink(a2, b2, jittery);
  auto ta2 = net2.bind(a2, 1);
  auto tb2 = net2.bind(b2, 1);
  for (std::uint8_t i = 0; i < kCount; ++i) ta2->send({b2, 1}, bytes({i}));
  net2.advance(1.0);
  std::vector<std::uint8_t> order2;
  while (auto d = tb2->receive()) order2.push_back(d->payload[0]);
  EXPECT_EQ(order, order2);
}

TEST_F(SimNetTest, JitterAddsVariableDelay) {
  LinkModel jittery;
  jittery.latencySec = 0.001;
  jittery.jitterSec = 0.01;
  net.setLink(a, b, jittery);
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  ta->send({b, 1}, bytes({1}));
  net.advance(0.002);
  // With 10 ms jitter the packet is very unlikely to have arrived in 2 ms;
  // but it must arrive within a generous horizon.
  net.advance(1.0);
  EXPECT_TRUE(tb->receive().has_value());
}

TEST_F(SimNetTest, InboxLimitDropsOverflow) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  tb->setInboxLimit(5);
  for (int i = 0; i < 10; ++i) ta->send({b, 1}, bytes({1}));
  net.advance(1.0);
  int received = 0;
  while (tb->receive()) ++received;
  EXPECT_EQ(received, 5);
  EXPECT_EQ(net.stats().packetsDropped, 5u);
}

TEST_F(SimNetTest, UnbindStopsDelivery) {
  auto ta = net.bind(a, 1);
  {
    auto tb = net.bind(b, 1);
    ta->send({b, 1}, bytes({1}));
  }  // tb destroyed while packet in flight
  net.advance(1.0);
  EXPECT_EQ(net.stats().packetsDropped, 1u);
}

TEST_F(SimNetTest, RebindAfterUnbindWorks) {
  auto t1 = net.bind(a, 1);
  t1.reset();
  auto t2 = net.bind(a, 1);  // same address, no "in use" error
  EXPECT_EQ(t2->localAddress(), (NodeAddr{a, 1}));
}

TEST_F(SimNetTest, DoubleBindThrows) {
  auto t1 = net.bind(a, 1);
  EXPECT_THROW(net.bind(a, 1), std::runtime_error);
}

TEST_F(SimNetTest, BadHostThrows) {
  EXPECT_THROW(net.bind(99, 1), std::out_of_range);
}

TEST_F(SimNetTest, StepAdvancesToNextPacket) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  ta->send({b, 1}, bytes({1}));
  EXPECT_TRUE(net.step());
  EXPECT_TRUE(tb->receive().has_value());
  EXPECT_FALSE(net.step());  // nothing left
}

TEST_F(SimNetTest, ClockAdvancesMonotonically) {
  EXPECT_DOUBLE_EQ(net.now(), 0.0);
  net.advance(0.5);
  EXPECT_DOUBLE_EQ(net.now(), 0.5);
  net.advance(0.25);
  EXPECT_DOUBLE_EQ(net.now(), 0.75);
}

TEST_F(SimNetTest, StatsCountTraffic) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  ta->send({b, 1}, bytes({1, 2, 3, 4}));
  net.advance(1.0);
  tb->receive();
  EXPECT_EQ(net.stats().packetsSent, 1u);
  EXPECT_EQ(net.stats().bytesSent, 4u);
  EXPECT_EQ(net.stats().packetsReceived, 1u);
  EXPECT_EQ(net.stats().bytesReceived, 4u);
}

TEST_F(SimNetTest, HostNames) {
  EXPECT_EQ(net.hostName(a), "a");
  EXPECT_EQ(net.hostName(b), "b");
  EXPECT_EQ(net.hostCount(), 2u);
}

/// Hand-built kBatch container: [u8 10][u16 count][(u32 len)(frame)×n].
/// (The protocol encoder lives in core, which net must not depend on; a
/// protocol test pins framesInDatagram against the real encoder.)
std::vector<std::uint8_t> fakeBatch(std::uint16_t count,
                                    std::uint8_t frameByte = 6) {
  std::vector<std::uint8_t> b;
  b.reserve(3u + count * 5u);
  b.push_back(10);
  b.push_back(static_cast<std::uint8_t>(count & 0xFF));
  b.push_back(static_cast<std::uint8_t>(count >> 8));
  for (std::uint16_t i = 0; i < count; ++i) {
    b.push_back(1);  // u32 length = 1, little endian
    b.push_back(0);
    b.push_back(0);
    b.push_back(0);
    b.push_back(frameByte);
  }
  return b;
}

TEST(FramesInDatagram, CountsContainersAndBareFrames) {
  EXPECT_EQ(framesInDatagram(fakeBatch(5)), 5u);
  EXPECT_EQ(framesInDatagram(fakeBatch(1)), 1u);
  EXPECT_EQ(framesInDatagram(bytes({6, 0, 0})), 1u);  // bare frame
  EXPECT_EQ(framesInDatagram(bytes({})), 1u);         // runt: one loss
  EXPECT_EQ(framesInDatagram(bytes({10, 0})), 1u);    // truncated header
  EXPECT_EQ(framesInDatagram(bytes({10, 0, 0})), 1u); // count 0: still 1
}

/// Satellite of the telemetry PR: a dropped kBatch container counts as N
/// lost frames, so soak suites and telemetry report true frame loss, and
/// the drop is attributed to the endpoint it was headed for.
TEST_F(SimNetTest, DroppedContainerCountsAllItsFrames) {
  LinkModel lossy;
  lossy.lossRate = 1.0;  // every packet dies
  net.setLink(a, b, lossy);
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  ta->send({b, 1}, fakeBatch(5));
  ta->send({b, 1}, bytes({6, 0, 0}));  // bare frame
  net.advance(1.0);
  EXPECT_EQ(net.stats().packetsSent, 2u);
  EXPECT_EQ(net.stats().framesSent, 6u);
  EXPECT_EQ(net.stats().packetsDropped, 2u);
  EXPECT_EQ(net.stats().framesDropped, 6u);
  // The sender's socket saw its frames leave; the receiver's socket is
  // charged the loss (the sim is omniscient; see SimTransport::stats).
  EXPECT_EQ(ta->stats()->framesSent, 6u);
  EXPECT_EQ(tb->stats()->framesDropped, 6u);
  EXPECT_EQ(tb->stats()->framesReceived, 0u);
}

TEST_F(SimNetTest, DeliveredContainerCountsFramesReceived) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  ta->send({b, 1}, fakeBatch(3));
  net.advance(1.0);
  ASSERT_TRUE(tb->receive().has_value());
  EXPECT_EQ(net.stats().framesSent, 3u);
  EXPECT_EQ(net.stats().framesReceived, 3u);
  EXPECT_EQ(net.stats().framesDropped, 0u);
  EXPECT_EQ(tb->stats()->framesReceived, 3u);
  EXPECT_EQ(tb->stats()->packetsReceived, 1u);
}

TEST_F(SimNetTest, BroadcastFramesCountedPerReceiverCopy) {
  // framesSent counts per delivered copy, mirroring the per-receiver
  // drop/receive accounting — the global loss ratio must never exceed 1.
  const HostId c = net.addHost("c");
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  auto tc = net.bind(c, 1);
  net.setPartitioned(a, c, true);
  ta->broadcast(1, fakeBatch(3));
  net.advance(1.0);
  EXPECT_EQ(net.stats().packetsSent, 1u);
  EXPECT_EQ(net.stats().framesSent, 6u);     // two receiver copies
  EXPECT_EQ(net.stats().framesDropped, 3u);  // c's copy, partitioned
  EXPECT_EQ(net.stats().framesReceived, 3u); // b's copy
  EXPECT_LE(net.stats().framesDropped, net.stats().framesSent);
}

TEST_F(SimNetTest, InboxOverflowChargesFramesToReceiver) {
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);
  tb->setInboxLimit(1);
  ta->send({b, 1}, fakeBatch(4));
  ta->send({b, 1}, fakeBatch(4));  // overflows: 4 frames lost
  net.advance(1.0);
  EXPECT_EQ(net.stats().framesDropped, 4u);
  EXPECT_EQ(tb->stats()->framesDropped, 4u);
  EXPECT_EQ(tb->stats()->framesReceived, 4u);
}

}  // namespace
}  // namespace cod::net
