#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace cod::core {
namespace {

TEST(Protocol, SubscriptionRoundTrip) {
  const SubscriptionMsg m{42, "crane.state"};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kSubscription);
  EXPECT_EQ(decoded->subscription.subscriptionId, 42u);
  EXPECT_EQ(decoded->subscription.className, "crane.state");
}

TEST(Protocol, AcknowledgeRoundTrip) {
  const AcknowledgeMsg m{7, 13, "audio.events"};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kAcknowledge);
  EXPECT_EQ(d->acknowledge.subscriptionId, 7u);
  EXPECT_EQ(d->acknowledge.publicationId, 13u);
  EXPECT_EQ(d->acknowledge.className, "audio.events");
}

TEST(Protocol, ChannelConnectionRoundTrip) {
  const ChannelConnectionMsg m{1, 2, 3, "x",
                               net::QosClass::kReliableOrdered};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kChannelConnection);
  EXPECT_EQ(d->channelConnection.subscriptionId, 1u);
  EXPECT_EQ(d->channelConnection.publicationId, 2u);
  EXPECT_EQ(d->channelConnection.channelId, 3u);
  EXPECT_EQ(d->channelConnection.qos, net::QosClass::kReliableOrdered);
  // The default-constructed message still speaks best effort.
  const auto d2 = decode(encode(ChannelConnectionMsg{1, 2, 3, "x"}));
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->channelConnection.qos, net::QosClass::kBestEffort);
}

TEST(Protocol, ChannelAckRoundTrip) {
  const ChannelAckMsg m{5, 6, net::QosClass::kReliableOrdered, 12345u};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kChannelAck);
  EXPECT_EQ(d->channelAck.channelId, 5u);
  EXPECT_EQ(d->channelAck.publicationId, 6u);
  EXPECT_EQ(d->channelAck.qos, net::QosClass::kReliableOrdered);
  EXPECT_EQ(d->channelAck.firstSeq, 12345u);
}

TEST(Protocol, InvalidQosRejected) {
  auto bytes = encode(ChannelConnectionMsg{1, 2, 3, "x"});
  bytes.back() = 7;  // not a QosClass
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, NackRoundTrip) {
  NackMsg m;
  m.channelId = 77;
  m.missingSeqs = {4, 5, 9, 1000000007ull};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kNack);
  EXPECT_EQ(d->nack.channelId, 77u);
  EXPECT_EQ(d->nack.missingSeqs, m.missingSeqs);
}

TEST(Protocol, EmptyNackRoundTrips) {
  const auto d = decode(encode(NackMsg{3, {}}));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->nack.missingSeqs.empty());
}

TEST(Protocol, WindowAckRoundTripBothDirections) {
  const auto fromSub = decode(encode(WindowAckMsg{8, 42, false}));
  ASSERT_TRUE(fromSub.has_value());
  EXPECT_EQ(fromSub->type, MsgType::kWindowAck);
  EXPECT_EQ(fromSub->windowAck.channelId, 8u);
  EXPECT_EQ(fromSub->windowAck.cumulativeSeq, 42u);
  EXPECT_FALSE(fromSub->windowAck.fromPublisher);
  const auto fromPub = decode(encode(WindowAckMsg{8, 42, true}));
  ASSERT_TRUE(fromPub.has_value());
  EXPECT_TRUE(fromPub->windowAck.fromPublisher);
}

TEST(Protocol, NackAndWindowAckStartWithPatchableChannelId) {
  // The retransmit fast path may re-target these frames like UPDATEs.
  auto nack = encode(NackMsg{0, {1, 2}});
  patchChannelId(nack, 31u);
  EXPECT_EQ(nack, encode(NackMsg{31u, {1, 2}}));
  auto ack = encode(WindowAckMsg{0, 9, false});
  patchChannelId(ack, 31u);
  EXPECT_EQ(ack, encode(WindowAckMsg{31u, 9, false}));
}

TEST(Protocol, TruncatedNackRejected) {
  const auto bytes = encode(NackMsg{1, {10, 20, 30}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Protocol, UpdateRoundTrip) {
  UpdateMsg m;
  m.channelId = 9;
  m.seq = 123456789ull;
  m.timestamp = 1.25;
  m.payload = {10, 20, 30};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kUpdate);
  EXPECT_EQ(d->update.channelId, 9u);
  EXPECT_EQ(d->update.seq, 123456789ull);
  EXPECT_DOUBLE_EQ(d->update.timestamp, 1.25);
  EXPECT_EQ(d->update.payload, (std::vector<std::uint8_t>{10, 20, 30}));
}

TEST(Protocol, HeartbeatCarriesDirection) {
  const auto pub = decode(encode(HeartbeatMsg{4, 2.0, true}));
  ASSERT_TRUE(pub.has_value());
  EXPECT_TRUE(pub->heartbeat.fromPublisher);
  const auto sub = decode(encode(HeartbeatMsg{4, 2.0, false}));
  ASSERT_TRUE(sub.has_value());
  EXPECT_FALSE(sub->heartbeat.fromPublisher);
}

TEST(Protocol, ByeCarriesDirection) {
  const auto d = decode(encode(ByeMsg{11, true}));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kBye);
  EXPECT_EQ(d->bye.channelId, 11u);
  EXPECT_TRUE(d->bye.fromPublisher);
}

TEST(Protocol, EmptyDatagramRejected) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}).has_value());
}

TEST(Protocol, UnknownTypeRejected) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{99, 0, 0}).has_value());
}

TEST(Protocol, TruncatedMessagesRejected) {
  auto bytes = encode(SubscriptionMsg{1, "some.class"});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Protocol, MsgTypeNames) {
  EXPECT_STREQ(msgTypeName(MsgType::kSubscription), "SUBSCRIPTION");
  EXPECT_STREQ(msgTypeName(MsgType::kAcknowledge), "ACKNOWLEDGE");
  EXPECT_STREQ(msgTypeName(MsgType::kChannelConnection), "CHANNEL_CONNECTION");
  EXPECT_STREQ(msgTypeName(MsgType::kChannelAck), "CHANNEL_ACK");
  EXPECT_STREQ(msgTypeName(MsgType::kUpdate), "UPDATE");
  EXPECT_STREQ(msgTypeName(MsgType::kHeartbeat), "HEARTBEAT");
  EXPECT_STREQ(msgTypeName(MsgType::kBye), "BYE");
  EXPECT_STREQ(msgTypeName(MsgType::kNack), "NACK");
  EXPECT_STREQ(msgTypeName(MsgType::kWindowAck), "WINDOW_ACK");
  EXPECT_STREQ(msgTypeName(MsgType::kBatch), "BATCH");
}

TEST(Protocol, EmptyClassNameAllowed) {
  const auto d = decode(encode(SubscriptionMsg{1, ""}));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->subscription.className.empty());
}

TEST(Protocol, BatchRoundTripMixedSubFrames) {
  // A container carrying one frame of each plane: data (UPDATE), liveness
  // (HEARTBEAT) and reliable control (NACK, WINDOW_ACK) — the mix a real
  // per-peer flush produces.
  UpdateMsg u;
  u.channelId = 3;
  u.seq = 9;
  u.timestamp = 0.5;
  u.payload = {1, 2, 3};
  BatchMsg m;
  m.frames.push_back(encode(u));
  m.frames.push_back(encode(HeartbeatMsg{3, 0.5, true}));
  m.frames.push_back(encode(NackMsg{4, {7, 8}}));
  m.frames.push_back(encode(WindowAckMsg{4, 6, false}));
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kBatch);
  ASSERT_EQ(d->batch.frames.size(), 4u);
  // Sub-frames are byte-identical to their un-batched encodes…
  EXPECT_EQ(d->batch.frames[0], encode(u));
  EXPECT_EQ(d->batch.frames[1], encode(HeartbeatMsg{3, 0.5, true}));
  // …and each decodes on its own.
  for (const auto& frame : d->batch.frames)
    EXPECT_TRUE(decode(frame).has_value());
}

TEST(Protocol, BatchBytesOnWireLayout) {
  // [u8 10][u16 count][(u32 len)(frame) × count], all little-endian.
  const std::vector<std::uint8_t> sub = encode(ByeMsg{7, true});
  BatchMsg m;
  m.frames = {sub, sub};
  const auto bytes = encode(m);
  ASSERT_EQ(bytes.size(), kBatchHeaderBytes +
                              2 * (kBatchFramePrefixBytes + sub.size()));
  EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(MsgType::kBatch));
  EXPECT_EQ(bytes[1], 2u);  // count lo
  EXPECT_EQ(bytes[2], 0u);  // count hi
  EXPECT_EQ(bytes[3], static_cast<std::uint8_t>(sub.size()));  // len lo
  EXPECT_EQ(bytes[4], 0u);
  EXPECT_EQ(bytes[5], 0u);
  EXPECT_EQ(bytes[6], 0u);
  EXPECT_TRUE(std::equal(sub.begin(), sub.end(), bytes.begin() + 7));
}

TEST(Protocol, BatchBuilderMatchesEncodeAndReusesCapacity) {
  const auto f1 = encode(HeartbeatMsg{1, 2.0, false});
  const auto f2 = encode(ByeMsg{2, true});
  BatchBuilder b;
  EXPECT_TRUE(b.empty());
  b.append(f1);
  // One staged frame: the container would be pure overhead, so the solo
  // view is the frame itself.
  ASSERT_EQ(b.frameCount(), 1u);
  EXPECT_TRUE(std::equal(f1.begin(), f1.end(), b.soloFrame().begin(),
                         b.soloFrame().end()));
  b.append(f2);
  BatchMsg m;
  m.frames = {f1, f2};
  const auto viaEncode = encode(m);
  const auto viaBuilder = b.bytes();
  EXPECT_TRUE(std::equal(viaEncode.begin(), viaEncode.end(),
                         viaBuilder.begin(), viaBuilder.end()));
  EXPECT_EQ(b.sizeWith(0), viaBuilder.size() + kBatchFramePrefixBytes);
  b.clear();
  EXPECT_TRUE(b.empty());
  b.append(f2);
  EXPECT_EQ(b.frameCount(), 1u);  // no stale frames after clear
  BatchMsg only2;
  only2.frames = {f2};
  const auto reused = b.bytes();
  const auto expect2 = encode(only2);
  EXPECT_TRUE(std::equal(expect2.begin(), expect2.end(), reused.begin(),
                         reused.end()));
}

TEST(Protocol, TruncatedBatchRejected) {
  BatchMsg m;
  m.frames = {encode(HeartbeatMsg{1, 2.0, false}), encode(ByeMsg{2, true})};
  const auto bytes = encode(m);
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Protocol, BatchWithTrailingGarbageRejected) {
  BatchMsg m;
  m.frames = {encode(ByeMsg{2, true})};
  auto bytes = encode(m);
  bytes.push_back(0xAA);  // count says 1 frame; datagram says otherwise
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, NestedBatchRejected) {
  BatchMsg inner;
  inner.frames = {encode(ByeMsg{1, false})};
  BatchMsg outer;
  outer.frames = {encode(inner)};
  EXPECT_FALSE(decode(encode(outer)).has_value());
}

TEST(Protocol, EmptyBatchRejected) {
  // count == 0 never leaves the coalescer (a flush with nothing staged
  // sends nothing), so an empty container on the wire is malformed.
  EXPECT_FALSE(decode(encode(BatchMsg{})).has_value());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{10, 0, 0}).has_value());
}

TEST(Protocol, BatchWithEmptySubFrameRejected) {
  // Hand-build [kBatch][count=1][len=0]: a zero-length sub-frame can never
  // be a CB message.
  const std::vector<std::uint8_t> bytes{10, 1, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, BatchSubFrameLengthBeyondDatagramRejected) {
  BatchMsg m;
  m.frames = {encode(ByeMsg{2, true})};
  auto bytes = encode(m);
  bytes[3] = 0xFF;  // sub-frame length now reaches past the datagram end
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, LargePayloadRoundTrips) {
  UpdateMsg m;
  m.channelId = 1;
  m.seq = 1;
  m.payload.assign(60000, 0x5A);
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->update.payload.size(), 60000u);
}

}  // namespace
}  // namespace cod::core
