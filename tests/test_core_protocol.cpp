#include "core/protocol.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <array>

#include "net/transport.hpp"
#include "telemetry/node_telemetry.hpp"

namespace cod::core {
namespace {

TEST(Protocol, SubscriptionRoundTrip) {
  const SubscriptionMsg m{42, "crane.state"};
  const auto decoded = decode(encode(m));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kSubscription);
  EXPECT_EQ(decoded->subscription.subscriptionId, 42u);
  EXPECT_EQ(decoded->subscription.className, "crane.state");
}

TEST(Protocol, AcknowledgeRoundTrip) {
  const AcknowledgeMsg m{7, 13, "audio.events"};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kAcknowledge);
  EXPECT_EQ(d->acknowledge.subscriptionId, 7u);
  EXPECT_EQ(d->acknowledge.publicationId, 13u);
  EXPECT_EQ(d->acknowledge.className, "audio.events");
}

TEST(Protocol, ChannelConnectionRoundTrip) {
  const ChannelConnectionMsg m{1, 2, 3, "x",
                               net::QosClass::kReliableOrdered};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kChannelConnection);
  EXPECT_EQ(d->channelConnection.subscriptionId, 1u);
  EXPECT_EQ(d->channelConnection.publicationId, 2u);
  EXPECT_EQ(d->channelConnection.channelId, 3u);
  EXPECT_EQ(d->channelConnection.qos, net::QosClass::kReliableOrdered);
  // The default-constructed message still speaks best effort.
  const auto d2 = decode(encode(ChannelConnectionMsg{1, 2, 3, "x"}));
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->channelConnection.qos, net::QosClass::kBestEffort);
}

TEST(Protocol, ChannelAckRoundTrip) {
  const ChannelAckMsg m{5, 6, net::QosClass::kReliableOrdered, 12345u};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kChannelAck);
  EXPECT_EQ(d->channelAck.channelId, 5u);
  EXPECT_EQ(d->channelAck.publicationId, 6u);
  EXPECT_EQ(d->channelAck.qos, net::QosClass::kReliableOrdered);
  EXPECT_EQ(d->channelAck.firstSeq, 12345u);
}

TEST(Protocol, InvalidQosRejected) {
  auto bytes = encode(ChannelConnectionMsg{1, 2, 3, "x"});
  bytes.back() = 7;  // not a QosClass
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, NackRoundTrip) {
  NackMsg m;
  m.channelId = 77;
  m.missingSeqs = {4, 5, 9, 1000000007ull};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kNack);
  EXPECT_EQ(d->nack.channelId, 77u);
  EXPECT_EQ(d->nack.missingSeqs, m.missingSeqs);
}

TEST(Protocol, EmptyNackRoundTrips) {
  const auto d = decode(encode(NackMsg{3, {}}));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->nack.missingSeqs.empty());
}

TEST(Protocol, WindowAckRoundTripBothDirections) {
  const auto fromSub = decode(encode(WindowAckMsg{8, 42, false}));
  ASSERT_TRUE(fromSub.has_value());
  EXPECT_EQ(fromSub->type, MsgType::kWindowAck);
  EXPECT_EQ(fromSub->windowAck.channelId, 8u);
  EXPECT_EQ(fromSub->windowAck.cumulativeSeq, 42u);
  EXPECT_FALSE(fromSub->windowAck.fromPublisher);
  const auto fromPub = decode(encode(WindowAckMsg{8, 42, true}));
  ASSERT_TRUE(fromPub.has_value());
  EXPECT_TRUE(fromPub->windowAck.fromPublisher);
}

TEST(Protocol, NackAndWindowAckStartWithPatchableChannelId) {
  // The retransmit fast path may re-target these frames like UPDATEs.
  auto nack = encode(NackMsg{0, {1, 2}});
  patchChannelId(nack, 31u);
  EXPECT_EQ(nack, encode(NackMsg{31u, {1, 2}}));
  auto ack = encode(WindowAckMsg{0, 9, false});
  patchChannelId(ack, 31u);
  EXPECT_EQ(ack, encode(WindowAckMsg{31u, 9, false}));
}

TEST(Protocol, TruncatedNackRejected) {
  const auto bytes = encode(NackMsg{1, {10, 20, 30}});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Protocol, UpdateRoundTrip) {
  UpdateMsg m;
  m.channelId = 9;
  m.seq = 123456789ull;
  m.timestamp = 1.25;
  m.payload = {10, 20, 30};
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kUpdate);
  EXPECT_EQ(d->update.channelId, 9u);
  EXPECT_EQ(d->update.seq, 123456789ull);
  EXPECT_DOUBLE_EQ(d->update.timestamp, 1.25);
  EXPECT_EQ(d->update.payload, (std::vector<std::uint8_t>{10, 20, 30}));
}

TEST(Protocol, UpdateTraceTagRoundTrips) {
  UpdateMsg m;
  m.channelId = 9;
  m.seq = 77;
  m.timestamp = 1.5;
  m.payload = {1, 2, 3};
  m.traced = true;
  m.pubWallSec = 12.625;
  const auto bytes = encode(m);
  // The tag is exactly [marker][f64] after the untagged frame.
  auto plain = m;
  plain.traced = false;
  EXPECT_EQ(bytes.size(), encode(plain).size() + 9);
  const auto d = decode(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->update.traced);
  EXPECT_DOUBLE_EQ(d->update.pubWallSec, 12.625);
  EXPECT_EQ(d->update.payload, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(Protocol, SamplingOffUpdateHasNoTraceBytes) {
  // traced=false must be byte-identical to the pre-trace encoding — the
  // interop guarantee the 1-in-N sampler rests on.
  UpdateMsg m;
  m.channelId = 9;
  m.seq = 77;
  m.timestamp = 1.5;
  m.payload = {1, 2, 3};
  const auto bytes = encode(m);
  net::WireWriter w;
  const std::size_t blob = beginUpdateFrame(w, m.seq, m.timestamp);
  for (std::uint8_t b : m.payload) w.u8(b);
  w.endBlob(blob);
  auto streamed = w.take();
  patchChannelId(streamed, m.channelId);
  EXPECT_EQ(bytes, streamed);
}

TEST(Protocol, UpdateForeignTailIgnoredNotTraced) {
  UpdateMsg m;
  m.channelId = 9;
  m.seq = 77;
  m.timestamp = 1.5;
  m.payload = {1, 2, 3};
  // A tail of the wrong length is ignored wholesale (pre-trace behavior).
  auto shortTail = encode(m);
  shortTail.insert(shortTail.end(), {0x54, 1, 2, 3});
  const auto d1 = decode(shortTail);
  ASSERT_TRUE(d1.has_value());
  EXPECT_FALSE(d1->update.traced);
  EXPECT_EQ(d1->update.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  // A 9-byte tail without the marker is ignored too.
  auto wrongMarker = encode(m);
  wrongMarker.insert(wrongMarker.end(), {0x55, 0, 0, 0, 0, 0, 0, 0, 0});
  const auto d2 = decode(wrongMarker);
  ASSERT_TRUE(d2.has_value());
  EXPECT_FALSE(d2->update.traced);
}

TEST(Protocol, WindowAckEchoRoundTrips) {
  WindowAckMsg a{5, 42, false};
  a.echoed = true;
  a.echoSeq = 7;
  a.echoTagSec = 3.25;
  a.echoHoldSec = 0.125;
  const auto bytes = encode(a);
  EXPECT_EQ(bytes.size(), encode(WindowAckMsg{5, 42, false}).size() + 25);
  const auto d = decode(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->windowAck.channelId, 5u);
  EXPECT_EQ(d->windowAck.cumulativeSeq, 42u);
  ASSERT_TRUE(d->windowAck.echoed);
  EXPECT_EQ(d->windowAck.echoSeq, 7u);
  EXPECT_DOUBLE_EQ(d->windowAck.echoTagSec, 3.25);
  EXPECT_DOUBLE_EQ(d->windowAck.echoHoldSec, 0.125);
  // The echoed ack still starts with the patchable channel id.
  auto patched = bytes;
  patchChannelId(patched, 31u);
  const auto dp = decode(patched);
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->windowAck.channelId, 31u);
  EXPECT_TRUE(dp->windowAck.echoed);
  EXPECT_EQ(dp->windowAck.echoSeq, 7u);
}

TEST(Protocol, WindowAckForeignTailIgnoredNotEchoed) {
  auto bytes = encode(WindowAckMsg{5, 42, false});
  bytes.insert(bytes.end(), {0x54, 1, 2});  // wrong length
  const auto d = decode(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->windowAck.echoed);
  auto wrongMarker = encode(WindowAckMsg{5, 42, false});
  wrongMarker.insert(wrongMarker.end(), 25, 0);  // right length, no marker
  const auto d2 = decode(wrongMarker);
  ASSERT_TRUE(d2.has_value());
  EXPECT_FALSE(d2->windowAck.echoed);
}

TEST(Protocol, WindowAckDupReportRoundTrips) {
  WindowAckMsg a{5, 42, false};
  a.dupReported = true;
  a.dupCount = 17;
  const auto bytes = encode(a);
  // Exactly [marker][u64] after the plain frame — no other bytes move.
  EXPECT_EQ(bytes.size(), encode(WindowAckMsg{5, 42, false}).size() + 9);
  const auto d = decode(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->windowAck.channelId, 5u);
  EXPECT_EQ(d->windowAck.cumulativeSeq, 42u);
  ASSERT_TRUE(d->windowAck.dupReported);
  EXPECT_EQ(d->windowAck.dupCount, 17u);
  EXPECT_FALSE(d->windowAck.echoed);
  // The dup-reporting ack still starts with the patchable channel id.
  auto patched = bytes;
  patchChannelId(patched, 31u);
  const auto dp = decode(patched);
  ASSERT_TRUE(dp.has_value());
  EXPECT_EQ(dp->windowAck.channelId, 31u);
  ASSERT_TRUE(dp->windowAck.dupReported);
  EXPECT_EQ(dp->windowAck.dupCount, 17u);
}

TEST(Protocol, WindowAckEchoAndDupReportStack) {
  // Both optional tails ride one ack: echo first, dup report after.
  WindowAckMsg a{9, 100, false};
  a.echoed = true;
  a.echoSeq = 55;
  a.echoTagSec = 1.5;
  a.echoHoldSec = 0.25;
  a.dupReported = true;
  a.dupCount = 3;
  const auto bytes = encode(a);
  EXPECT_EQ(bytes.size(), encode(WindowAckMsg{9, 100, false}).size() + 25 + 9);
  const auto d = decode(bytes);
  ASSERT_TRUE(d.has_value());
  ASSERT_TRUE(d->windowAck.echoed);
  EXPECT_EQ(d->windowAck.echoSeq, 55u);
  EXPECT_DOUBLE_EQ(d->windowAck.echoTagSec, 1.5);
  EXPECT_DOUBLE_EQ(d->windowAck.echoHoldSec, 0.25);
  ASSERT_TRUE(d->windowAck.dupReported);
  EXPECT_EQ(d->windowAck.dupCount, 3u);
}

TEST(Protocol, WindowAckForeignTailIgnoredNotDupReported) {
  // A 9-byte tail without the dup marker is ignored wholesale.
  auto wrongMarker = encode(WindowAckMsg{5, 42, false});
  wrongMarker.insert(wrongMarker.end(), {0x45, 0, 0, 0, 0, 0, 0, 0, 0});
  const auto d = decode(wrongMarker);
  ASSERT_TRUE(d.has_value());
  EXPECT_FALSE(d->windowAck.dupReported);
  EXPECT_EQ(d->windowAck.cumulativeSeq, 42u);
  // The echo marker at dup-block length must not be taken for a dup block.
  auto echoMarker = encode(WindowAckMsg{5, 42, false});
  echoMarker.insert(echoMarker.end(), {0x54, 0, 0, 0, 0, 0, 0, 0, 1});
  const auto d2 = decode(echoMarker);
  ASSERT_TRUE(d2.has_value());
  EXPECT_FALSE(d2->windowAck.dupReported);
  EXPECT_FALSE(d2->windowAck.echoed);
}

TEST(Protocol, WindowAckArbitraryTailsNeverCorruptBaseFields) {
  // Fuzz the optional-tail parser: any appended tail of any length must
  // leave the mandatory fields intact and either parse a well-formed
  // block or ignore the tail — never reject the frame or misparse.
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  const auto plain = encode(WindowAckMsg{12, 777, false});
  for (int iter = 0; iter < 2000; ++iter) {
    auto bytes = plain;
    const std::size_t len = next() % 40;
    for (std::size_t i = 0; i < len; ++i)
      bytes.push_back(static_cast<std::uint8_t>(next() & 0xFF));
    const auto d = decode(bytes);
    ASSERT_TRUE(d.has_value()) << "iter=" << iter << " len=" << len;
    EXPECT_EQ(d->windowAck.channelId, 12u);
    EXPECT_EQ(d->windowAck.cumulativeSeq, 777u);
    EXPECT_FALSE(d->windowAck.fromPublisher);
    // A parsed block implies its exact wire shape was present.
    if (d->windowAck.dupReported) {
      EXPECT_TRUE(len == 9 || (len == 34 && d->windowAck.echoed));
    }
    if (d->windowAck.echoed) {
      EXPECT_TRUE(len == 25 || len == 34);
    }
  }
}

TEST(Protocol, HeartbeatCarriesDirection) {
  const auto pub = decode(encode(HeartbeatMsg{4, 2.0, true}));
  ASSERT_TRUE(pub.has_value());
  EXPECT_TRUE(pub->heartbeat.fromPublisher);
  const auto sub = decode(encode(HeartbeatMsg{4, 2.0, false}));
  ASSERT_TRUE(sub.has_value());
  EXPECT_FALSE(sub->heartbeat.fromPublisher);
}

TEST(Protocol, ByeCarriesDirection) {
  const auto d = decode(encode(ByeMsg{11, true}));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kBye);
  EXPECT_EQ(d->bye.channelId, 11u);
  EXPECT_TRUE(d->bye.fromPublisher);
}

TEST(Protocol, EmptyDatagramRejected) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{}).has_value());
}

TEST(Protocol, UnknownTypeRejected) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{99, 0, 0}).has_value());
}

TEST(Protocol, TruncatedMessagesRejected) {
  auto bytes = encode(SubscriptionMsg{1, "some.class"});
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Protocol, MsgTypeNames) {
  EXPECT_STREQ(msgTypeName(MsgType::kSubscription), "SUBSCRIPTION");
  EXPECT_STREQ(msgTypeName(MsgType::kAcknowledge), "ACKNOWLEDGE");
  EXPECT_STREQ(msgTypeName(MsgType::kChannelConnection), "CHANNEL_CONNECTION");
  EXPECT_STREQ(msgTypeName(MsgType::kChannelAck), "CHANNEL_ACK");
  EXPECT_STREQ(msgTypeName(MsgType::kUpdate), "UPDATE");
  EXPECT_STREQ(msgTypeName(MsgType::kHeartbeat), "HEARTBEAT");
  EXPECT_STREQ(msgTypeName(MsgType::kBye), "BYE");
  EXPECT_STREQ(msgTypeName(MsgType::kNack), "NACK");
  EXPECT_STREQ(msgTypeName(MsgType::kWindowAck), "WINDOW_ACK");
  EXPECT_STREQ(msgTypeName(MsgType::kBatch), "BATCH");
}

TEST(Protocol, EmptyClassNameAllowed) {
  const auto d = decode(encode(SubscriptionMsg{1, ""}));
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->subscription.className.empty());
}

TEST(Protocol, BatchRoundTripMixedSubFrames) {
  // A container carrying one frame of each plane: data (UPDATE), liveness
  // (HEARTBEAT) and reliable control (NACK, WINDOW_ACK) — the mix a real
  // per-peer flush produces.
  UpdateMsg u;
  u.channelId = 3;
  u.seq = 9;
  u.timestamp = 0.5;
  u.payload = {1, 2, 3};
  BatchMsg m;
  m.frames.push_back(encode(u));
  m.frames.push_back(encode(HeartbeatMsg{3, 0.5, true}));
  m.frames.push_back(encode(NackMsg{4, {7, 8}}));
  m.frames.push_back(encode(WindowAckMsg{4, 6, false}));
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->type, MsgType::kBatch);
  ASSERT_EQ(d->batch.frames.size(), 4u);
  // Sub-frames are byte-identical to their un-batched encodes…
  EXPECT_EQ(d->batch.frames[0], encode(u));
  EXPECT_EQ(d->batch.frames[1], encode(HeartbeatMsg{3, 0.5, true}));
  // …and each decodes on its own.
  for (const auto& frame : d->batch.frames)
    EXPECT_TRUE(decode(frame).has_value());
}

TEST(Protocol, BatchBytesOnWireLayout) {
  // [u8 10][u16 count][(u32 len)(frame) × count], all little-endian.
  const std::vector<std::uint8_t> sub = encode(ByeMsg{7, true});
  BatchMsg m;
  m.frames = {sub, sub};
  const auto bytes = encode(m);
  ASSERT_EQ(bytes.size(), kBatchHeaderBytes +
                              2 * (kBatchFramePrefixBytes + sub.size()));
  EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(MsgType::kBatch));
  EXPECT_EQ(bytes[1], 2u);  // count lo
  EXPECT_EQ(bytes[2], 0u);  // count hi
  EXPECT_EQ(bytes[3], static_cast<std::uint8_t>(sub.size()));  // len lo
  EXPECT_EQ(bytes[4], 0u);
  EXPECT_EQ(bytes[5], 0u);
  EXPECT_EQ(bytes[6], 0u);
  EXPECT_TRUE(std::equal(sub.begin(), sub.end(), bytes.begin() + 7));
}

TEST(Protocol, BatchBuilderMatchesEncodeAndReusesCapacity) {
  const auto f1 = encode(HeartbeatMsg{1, 2.0, false});
  const auto f2 = encode(ByeMsg{2, true});
  BatchBuilder b;
  EXPECT_TRUE(b.empty());
  b.append(f1);
  // One staged frame: the container would be pure overhead, so the solo
  // view is the frame itself.
  ASSERT_EQ(b.frameCount(), 1u);
  EXPECT_TRUE(std::equal(f1.begin(), f1.end(), b.soloFrame().begin(),
                         b.soloFrame().end()));
  b.append(f2);
  BatchMsg m;
  m.frames = {f1, f2};
  const auto viaEncode = encode(m);
  const auto viaBuilder = b.bytes();
  EXPECT_TRUE(std::equal(viaEncode.begin(), viaEncode.end(),
                         viaBuilder.begin(), viaBuilder.end()));
  EXPECT_EQ(b.sizeWith(0), viaBuilder.size() + kBatchFramePrefixBytes);
  b.clear();
  EXPECT_TRUE(b.empty());
  b.append(f2);
  EXPECT_EQ(b.frameCount(), 1u);  // no stale frames after clear
  BatchMsg only2;
  only2.frames = {f2};
  const auto reused = b.bytes();
  const auto expect2 = encode(only2);
  EXPECT_TRUE(std::equal(expect2.begin(), expect2.end(), reused.begin(),
                         reused.end()));
}

TEST(Protocol, TruncatedBatchRejected) {
  BatchMsg m;
  m.frames = {encode(HeartbeatMsg{1, 2.0, false}), encode(ByeMsg{2, true})};
  const auto bytes = encode(m);
  for (std::size_t cut = 1; cut < bytes.size(); ++cut) {
    const std::vector<std::uint8_t> truncated(bytes.begin(),
                                              bytes.begin() + cut);
    EXPECT_FALSE(decode(truncated).has_value()) << "cut=" << cut;
  }
}

TEST(Protocol, BatchWithTrailingGarbageRejected) {
  BatchMsg m;
  m.frames = {encode(ByeMsg{2, true})};
  auto bytes = encode(m);
  bytes.push_back(0xAA);  // count says 1 frame; datagram says otherwise
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, NestedBatchRejected) {
  BatchMsg inner;
  inner.frames = {encode(ByeMsg{1, false})};
  BatchMsg outer;
  outer.frames = {encode(inner)};
  EXPECT_FALSE(decode(encode(outer)).has_value());
}

TEST(Protocol, EmptyBatchRejected) {
  // count == 0 never leaves the coalescer (a flush with nothing staged
  // sends nothing), so an empty container on the wire is malformed.
  EXPECT_FALSE(decode(encode(BatchMsg{})).has_value());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>{10, 0, 0}).has_value());
}

TEST(Protocol, BatchWithEmptySubFrameRejected) {
  // Hand-build [kBatch][count=1][len=0]: a zero-length sub-frame can never
  // be a CB message.
  const std::vector<std::uint8_t> bytes{10, 1, 0, 0, 0, 0, 0};
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, BatchSubFrameLengthBeyondDatagramRejected) {
  BatchMsg m;
  m.frames = {encode(ByeMsg{2, true})};
  auto bytes = encode(m);
  bytes[3] = 0xFF;  // sub-frame length now reaches past the datagram end
  EXPECT_FALSE(decode(bytes).has_value());
}

TEST(Protocol, LargePayloadRoundTrips) {
  UpdateMsg m;
  m.channelId = 1;
  m.seq = 1;
  m.payload.assign(60000, 0x5A);
  const auto d = decode(encode(m));
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->update.payload.size(), 60000u);
}

/// net::framesInDatagram duplicates the three kBatch header bytes (net
/// cannot include core); this pin breaks if either side drifts.
TEST(Protocol, FramesInDatagramMatchesBatchEncoder) {
  BatchMsg batch;
  for (int i = 0; i < 7; ++i)
    batch.frames.push_back(encode(HeartbeatMsg{static_cast<std::uint32_t>(i),
                                               0.5, false}));
  EXPECT_EQ(net::framesInDatagram(encode(batch)), 7u);
  EXPECT_EQ(net::framesInDatagram(encode(HeartbeatMsg{1, 0.5, false})), 1u);
  EXPECT_EQ(static_cast<std::uint8_t>(MsgType::kBatch), 10u);
}

// ---- NodeTelemetry wire format ------------------------------------------

telemetry::NodeTelemetry sampleTelemetry() {
  telemetry::NodeTelemetry t;
  t.seq = 17;
  t.node = "dynamics";
  t.addr = {6, 1};
  t.nodeTimeSec = 123.25;
  // Give every counter a distinct nonzero value so a shifted field table
  // cannot round-trip by accident.
  for (std::size_t i = 0; i < telemetry::counterCount(); ++i)
    telemetry::setCounterValue(t, i, 1000 + 7 * i);
  CbChannelHealth out;
  out.channelId = 42;
  out.className = "crane.state";
  out.outbound = true;
  out.qos = net::QosClass::kReliableOrdered;
  out.live = true;
  out.ageSec = 0.25;
  out.windowFrames = 12;
  out.retransmits = 3;
  out.cumAcked = 900;
  t.channels.push_back(out);
  CbChannelHealth in;
  in.channelId = 43;
  in.className = "scenario.status";
  in.live = false;
  in.ageSec = 1.5;
  t.channels.push_back(in);
  // Distinct nonzero content in every v3 histogram, with sparse buckets
  // at different indices per histogram.
  for (std::size_t h = 0; h < telemetry::CbHistograms::kCount; ++h) {
    telemetry::HistogramSnapshot& s = t.hists[h];
    s.count = 50 + h;
    s.sum = 1.5 * static_cast<double>(h + 1);
    s.min = 1e-4;
    s.max = 0.5 + static_cast<double>(h);
    s.buckets[3] = 20 + h;
    s.buckets[40 + h] = 30 + h;
  }
  t.shardLoad.push_back(core::CbShardLoad{3, 4, 5, 6});
  t.shardLoad.push_back(core::CbShardLoad{1, 0, 2, 0});
  return t;
}

void expectTelemetryEq(const telemetry::NodeTelemetry& a,
                       const telemetry::NodeTelemetry& b) {
  EXPECT_EQ(a.seq, b.seq);
  EXPECT_EQ(a.node, b.node);
  EXPECT_EQ(a.addr, b.addr);
  EXPECT_EQ(a.nodeTimeSec, b.nodeTimeSec);
  for (std::size_t i = 0; i < telemetry::counterCount(); ++i)
    EXPECT_EQ(telemetry::counterValue(a, i), telemetry::counterValue(b, i))
        << telemetry::counterName(i);
  ASSERT_EQ(a.channels.size(), b.channels.size());
  for (std::size_t i = 0; i < a.channels.size(); ++i) {
    EXPECT_EQ(a.channels[i].channelId, b.channels[i].channelId);
    EXPECT_EQ(a.channels[i].className, b.channels[i].className);
    EXPECT_EQ(a.channels[i].outbound, b.channels[i].outbound);
    EXPECT_EQ(a.channels[i].qos, b.channels[i].qos);
    EXPECT_EQ(a.channels[i].live, b.channels[i].live);
    EXPECT_EQ(a.channels[i].ageSec, b.channels[i].ageSec);
    EXPECT_EQ(a.channels[i].windowFrames, b.channels[i].windowFrames);
    EXPECT_EQ(a.channels[i].retransmits, b.channels[i].retransmits);
    EXPECT_EQ(a.channels[i].cumAcked, b.channels[i].cumAcked);
  }
  for (std::size_t i = 0; i < telemetry::CbHistograms::kCount; ++i)
    EXPECT_EQ(a.hists[i], b.hists[i]) << telemetry::CbHistograms::name(i);
  ASSERT_EQ(a.shardLoad.size(), b.shardLoad.size());
  for (std::size_t i = 0; i < a.shardLoad.size(); ++i) {
    EXPECT_EQ(a.shardLoad[i].publications, b.shardLoad[i].publications);
    EXPECT_EQ(a.shardLoad[i].subscriptions, b.shardLoad[i].subscriptions);
    EXPECT_EQ(a.shardLoad[i].inChannels, b.shardLoad[i].inChannels);
    EXPECT_EQ(a.shardLoad[i].outChannels, b.shardLoad[i].outChannels);
  }
}

TEST(TelemetryWire, KeyframeRoundTrips) {
  const auto t = sampleTelemetry();
  const auto bytes = telemetry::encodeTelemetry(t);
  const auto d = telemetry::decodeTelemetry(bytes);
  ASSERT_TRUE(d.has_value());
  expectTelemetryEq(*d, t);
  // A keyframe identifies itself: no base sequence in the header.
  const auto header = telemetry::peekTelemetryHeader(bytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->seq, 17u);
  EXPECT_EQ(header->node, "dynamics");
  EXPECT_FALSE(header->baseSeq.has_value());
}

TEST(TelemetryWire, DeltaRoundTripsAgainstKeyframe) {
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  next.nodeTimeSec = 124.25;
  telemetry::setCounterValue(next, 4, 99999);   // cb.updatesSent
  telemetry::setCounterValue(next, 35, 55555);  // a transport counter
  next.channels[1].live = true;
  // One histogram grows a bucket; a delta lists only that bucket, and the
  // decode seeds the rest from the keyframe.
  next.hists[0].count += 4;
  next.hists[0].sum += 0.25;
  next.hists[0].buckets[3] += 4;
  next.shardLoad[1].inChannels = 9;
  const auto bytes = telemetry::encodeTelemetryDelta(next, base);
  // Deltas only carry changed counters: much smaller than a keyframe.
  EXPECT_LT(bytes.size(), telemetry::encodeTelemetry(next).size() / 2);
  const auto header = telemetry::peekTelemetryHeader(bytes);
  ASSERT_TRUE(header.has_value());
  ASSERT_TRUE(header->baseSeq.has_value());
  EXPECT_EQ(*header->baseSeq, base.seq);
  const auto d = telemetry::decodeTelemetry(bytes, &base);
  ASSERT_TRUE(d.has_value());
  expectTelemetryEq(*d, next);
}

TEST(TelemetryWire, DeltaWithoutMatchingBaseRejected) {
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  telemetry::setCounterValue(next, 0, 1);
  const auto bytes = telemetry::encodeTelemetryDelta(next, base);
  EXPECT_FALSE(telemetry::decodeTelemetry(bytes).has_value());
  auto wrongBase = base;
  wrongBase.seq = 16;  // stale keyframe: counters could be anything
  EXPECT_FALSE(telemetry::decodeTelemetry(bytes, &wrongBase).has_value());
}

TEST(TelemetryWire, TruncatedRecordsRejectedAtEveryLength) {
  const auto t = sampleTelemetry();
  const auto full = telemetry::encodeTelemetry(t);
  for (std::size_t len = 0; len < full.size(); ++len) {
    const auto prefix = std::span<const std::uint8_t>(full).first(len);
    EXPECT_FALSE(telemetry::decodeTelemetry(prefix).has_value())
        << "prefix length " << len;
  }
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  telemetry::setCounterValue(next, 10, 424242);
  const auto delta = telemetry::encodeTelemetryDelta(next, base);
  for (std::size_t len = 0; len < delta.size(); ++len) {
    const auto prefix = std::span<const std::uint8_t>(delta).first(len);
    EXPECT_FALSE(telemetry::decodeTelemetry(prefix, &base).has_value())
        << "delta prefix length " << len;
  }
}

TEST(TelemetryWire, CorruptRecordsRejected) {
  const auto t = sampleTelemetry();
  auto bytes = telemetry::encodeTelemetry(t);
  // Trailing garbage.
  auto trailing = bytes;
  trailing.push_back(0);
  EXPECT_FALSE(telemetry::decodeTelemetry(trailing).has_value());
  // Wrong version byte.
  auto wrongVersion = bytes;
  wrongVersion[0] = telemetry::kTelemetryVersion + 1;
  EXPECT_FALSE(telemetry::decodeTelemetry(wrongVersion).has_value());
  // Undefined flag bits.
  auto wrongFlags = bytes;
  wrongFlags[1] = 0x80;
  EXPECT_FALSE(telemetry::decodeTelemetry(wrongFlags).has_value());
  // A delta naming a counter index beyond the table.
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  telemetry::setCounterValue(next, 0, base.cb.broadcastsSent + 1);
  auto delta = telemetry::encodeTelemetryDelta(next, base);
  // Locate the (single) changed-field index right after the u16 count that
  // follows the header; corrupt it to an out-of-range value.
  const std::size_t headerSize = 1 + 1 + 8 + (2 + next.node.size()) + 4 + 2 +
                                 8 + 8;  // ver,flags,seq,str,host,port,time,baseSeq
  ASSERT_LT(headerSize + 3, delta.size());
  delta[headerSize + 2] = 0xFF;  // field index low byte
  delta[headerSize + 3] = 0xFF;  // field index high byte
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
}

// Locate a unique little-endian byte pattern inside an encoded record —
// how the histogram-fuzz tests find a bucket entry to corrupt without
// hard-coding block offsets.
std::size_t findPattern(const std::vector<std::uint8_t>& bytes,
                        const std::vector<std::uint8_t>& pattern) {
  const auto it =
      std::search(bytes.begin(), bytes.end(), pattern.begin(), pattern.end());
  EXPECT_NE(it, bytes.end()) << "pattern not found in encoded record";
  return static_cast<std::size_t>(it - bytes.begin());
}

TEST(TelemetryWire, HistogramBucketIndexOutOfRangeRejected) {
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  next.hists[0].count += 1;
  next.hists[0].buckets[7] = 0xDEADBEEFull;
  auto delta = telemetry::encodeTelemetryDelta(next, base);
  ASSERT_TRUE(telemetry::decodeTelemetry(delta, &base).has_value());
  // The lone changed bucket rides as [u16 idx=7][u64 0xDEADBEEF].
  const std::size_t at = findPattern(
      delta, {7, 0, 0xEF, 0xBE, 0xAD, 0xDE, 0, 0, 0, 0});
  delta[at] = telemetry::kHistBuckets;  // idx beyond the bucket array
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
}

TEST(TelemetryWire, HistogramNonAscendingBucketIndexRejected) {
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  next.hists[0].count += 2;
  next.hists[0].buckets[7] = 0x11223344ull;
  next.hists[0].buckets[9] = 0x55667788ull;
  auto delta = telemetry::encodeTelemetryDelta(next, base);
  ASSERT_TRUE(telemetry::decodeTelemetry(delta, &base).has_value());
  const std::size_t at = findPattern(
      delta, {9, 0, 0x88, 0x77, 0x66, 0x55, 0, 0, 0, 0});
  delta[at] = 5;  // second entry now indexes below the first (7)
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
  delta[at] = 7;  // duplicate index: "strictly ascending" rejects too
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
}

TEST(TelemetryWire, HistogramSetSizeMismatchRejected) {
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  next.hists[0].count = 0xABCD1234ull;  // distinctive scalar to anchor on
  auto delta = telemetry::encodeTelemetryDelta(next, base);
  ASSERT_TRUE(telemetry::decodeTelemetry(delta, &base).has_value());
  // The hist block opens [u16 kCount] immediately before hist 0's count.
  const std::size_t at = findPattern(
      delta, {telemetry::CbHistograms::kCount, 0, 0x34, 0x12, 0xCD, 0xAB, 0, 0,
              0, 0});
  delta[at] = telemetry::CbHistograms::kCount + 1;
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
  delta[at] = telemetry::CbHistograms::kCount - 1;
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
}

TEST(TelemetryWire, HistogramDeltaAgainstWrongBaseDiverges) {
  // A delta's sparse bucket list is only meaningful over its own keyframe;
  // the seq check is what rejects a stale base outright (covered above).
  // Here: decoding against the *right* base reproduces the buckets the
  // encoder saw, bucket-exact.
  const auto base = sampleTelemetry();
  auto next = base;
  next.seq = 18;
  next.hists[2].buckets[42] += 11;
  next.hists[2].count += 11;
  const auto delta = telemetry::encodeTelemetryDelta(next, base);
  const auto d = telemetry::decodeTelemetry(delta, &base);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->hists[2].buckets[42], base.hists[2].buckets[42] + 11);
  EXPECT_EQ(d->hists[2].buckets[3], base.hists[2].buckets[3]);  // seeded
}

// ---- Wire v5: the tick-phase block --------------------------------------

// sampleTelemetry() with the phase profiler on and distinct nonzero
// content in every phase histogram.
telemetry::NodeTelemetry samplePhasedTelemetry() {
  auto t = sampleTelemetry();
  t.phaseProfiling = true;
  for (std::size_t p = 0; p < telemetry::kTickPhaseCount; ++p) {
    telemetry::HistogramSnapshot& s = t.phases[p];
    s.count = 400 + p;
    s.sum = 0.25 * static_cast<double>(p + 1);
    s.min = 1e-6;
    s.max = 0.01 + static_cast<double>(p) * 1e-3;
    s.buckets[5] = 100 + p;
    s.buckets[60 + p] = 200 + p;
  }
  return t;
}

TEST(TelemetryWire, PhaselessEncodingIsByteIdenticalV4) {
  // With the profiler off the encoder must emit the EXACT v4 record a
  // pre-v5 build emits: version byte 4, nothing appended. A v5-capable
  // peer with the profiler on produces those same bytes with only the
  // version relabeled and the phase block appended last — so v4 decoders
  // never see phase bytes and v5 decoders interop with v4 peers.
  const auto plain = sampleTelemetry();
  const auto v4 = telemetry::encodeTelemetry(plain);
  EXPECT_EQ(v4[0], telemetry::kTelemetryVersionPhaseless);
  auto phased = plain;
  phased.phaseProfiling = true;  // all-zero phase snapshots
  const auto v5 = telemetry::encodeTelemetry(phased);
  ASSERT_GT(v5.size(), v4.size());
  EXPECT_EQ(v5[0], telemetry::kTelemetryVersion);
  EXPECT_TRUE(std::equal(v4.begin() + 1, v4.end(), v5.begin() + 1))
      << "phase block must be appended after every v4 block, not inserted";
}

TEST(TelemetryWire, PhaseBlockRoundTripsKeyframeAndDelta) {
  const auto base = samplePhasedTelemetry();
  const auto bytes = telemetry::encodeTelemetry(base);
  const auto k = telemetry::decodeTelemetry(bytes);
  ASSERT_TRUE(k.has_value());
  EXPECT_TRUE(k->phaseProfiling);
  expectTelemetryEq(*k, base);
  for (std::size_t p = 0; p < telemetry::kTickPhaseCount; ++p)
    EXPECT_EQ(k->phases[p], base.phases[p])
        << telemetry::TickPhaseHistograms::name(p);
  // Peek understands both versions.
  const auto header = telemetry::peekTelemetryHeader(bytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->node, base.node);

  auto next = base;
  next.seq = 18;
  next.phases[1].count += 6;
  next.phases[1].sum += 0.125;
  next.phases[1].buckets[5] += 6;
  const auto delta = telemetry::encodeTelemetryDelta(next, base);
  const auto d = telemetry::decodeTelemetry(delta, &base);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->phaseProfiling);
  for (std::size_t p = 0; p < telemetry::kTickPhaseCount; ++p)
    EXPECT_EQ(d->phases[p], next.phases[p])
        << telemetry::TickPhaseHistograms::name(p);
}

TEST(TelemetryWire, V5WithoutPhaseBlockRejected) {
  // A record claiming version 5 must actually CARRY the phase block; a
  // v4-shaped record relabeled 5 is truncated input, not a quiet default.
  auto bytes = telemetry::encodeTelemetry(sampleTelemetry());
  ASSERT_EQ(bytes[0], telemetry::kTelemetryVersionPhaseless);
  bytes[0] = telemetry::kTelemetryVersion;
  EXPECT_FALSE(telemetry::decodeTelemetry(bytes).has_value());
  // And the converse: version 4 bytes followed by a phase block is
  // trailing garbage to a v4 parse.
  auto v5 = telemetry::encodeTelemetry(samplePhasedTelemetry());
  ASSERT_EQ(v5[0], telemetry::kTelemetryVersion);
  v5[0] = telemetry::kTelemetryVersionPhaseless;
  EXPECT_FALSE(telemetry::decodeTelemetry(v5).has_value());
}

TEST(TelemetryWire, PhaseBucketIndexOutOfRangeRejected) {
  const auto base = samplePhasedTelemetry();
  auto next = base;
  next.seq = 18;
  next.phases[0].count += 1;
  next.phases[0].buckets[11] = 0xFACEB00Cull;
  auto delta = telemetry::encodeTelemetryDelta(next, base);
  ASSERT_TRUE(telemetry::decodeTelemetry(delta, &base).has_value());
  const std::size_t at = findPattern(
      delta, {11, 0, 0x0C, 0xB0, 0xCE, 0xFA, 0, 0, 0, 0});
  delta[at] = telemetry::kHistBuckets;  // idx beyond the bucket array
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
}

TEST(TelemetryWire, PhaseNonAscendingBucketIndexRejected) {
  const auto base = samplePhasedTelemetry();
  auto next = base;
  next.seq = 18;
  next.phases[2].count += 2;
  next.phases[2].buckets[11] = 0x31415926ull;
  next.phases[2].buckets[13] = 0x27182818ull;
  auto delta = telemetry::encodeTelemetryDelta(next, base);
  ASSERT_TRUE(telemetry::decodeTelemetry(delta, &base).has_value());
  const std::size_t at = findPattern(
      delta, {13, 0, 0x18, 0x28, 0x18, 0x27, 0, 0, 0, 0});
  delta[at] = 9;  // second entry now indexes below the first (11)
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
  delta[at] = 11;  // duplicate index: "strictly ascending" rejects too
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
}

TEST(TelemetryWire, PhaseSetSizeMismatchRejected) {
  const auto base = samplePhasedTelemetry();
  auto next = base;
  next.seq = 18;
  next.phases[0].count = 0x1234DCBAull;  // distinctive scalar to anchor on
  auto delta = telemetry::encodeTelemetryDelta(next, base);
  ASSERT_TRUE(telemetry::decodeTelemetry(delta, &base).has_value());
  // The phase block opens [u16 kTickPhaseCount] right before phase 0's
  // count scalar.
  const std::size_t at = findPattern(
      delta, {telemetry::kTickPhaseCount, 0, 0xBA, 0xDC, 0x34, 0x12, 0, 0,
              0, 0});
  delta[at] = telemetry::kTickPhaseCount + 1;
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
  delta[at] = telemetry::kTickPhaseCount - 1;
  EXPECT_FALSE(telemetry::decodeTelemetry(delta, &base).has_value());
}

// ---- Wire v6: the async-engine block ------------------------------------

// sampleTelemetry() with the async engine on and distinct nonzero values
// in every engine counter.
telemetry::NodeTelemetry sampleAsyncTelemetry() {
  auto t = sampleTelemetry();
  t.asyncNet = true;
  for (std::size_t i = 0; i < net::kEngineCounterCount; ++i)
    t.engine[i] = 9000 + 11 * i;
  return t;
}

TEST(TelemetryWire, AsyncKeyframeRoundTripsAsV6) {
  const auto t = sampleAsyncTelemetry();
  const auto bytes = telemetry::encodeTelemetry(t);
  EXPECT_EQ(bytes[0], telemetry::kTelemetryVersionAsync);
  const auto d = telemetry::decodeTelemetry(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->asyncNet);
  EXPECT_FALSE(d->phaseProfiling);
  expectTelemetryEq(*d, t);
  for (std::size_t i = 0; i < net::kEngineCounterCount; ++i)
    EXPECT_EQ(d->engine[i], t.engine[i]) << net::engineCounterName(i);
  // Peek understands v6 headers.
  const auto header = telemetry::peekTelemetryHeader(bytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->node, t.node);
  EXPECT_FALSE(header->baseSeq.has_value());
}

TEST(TelemetryWire, AsyncDeltaRoundTripsEngineBlock) {
  const auto base = sampleAsyncTelemetry();
  auto next = base;
  next.seq = 18;
  telemetry::setCounterValue(next, 4, 77777);
  next.engine[0] += 123;                             // recvDatagrams grew
  next.engine[net::kEngineCounterCount - 1] = 4096;  // sendRingPeak
  const auto delta = telemetry::encodeTelemetryDelta(next, base);
  const auto header = telemetry::peekTelemetryHeader(delta);
  ASSERT_TRUE(header.has_value());
  ASSERT_TRUE(header->baseSeq.has_value());
  EXPECT_EQ(*header->baseSeq, base.seq);
  const auto d = telemetry::decodeTelemetry(delta, &base);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->asyncNet);
  expectTelemetryEq(*d, next);
  for (std::size_t i = 0; i < net::kEngineCounterCount; ++i)
    EXPECT_EQ(d->engine[i], next.engine[i]) << net::engineCounterName(i);
}

TEST(TelemetryWire, AsyncWithPhasesCarriesBothBlocks) {
  // An async node that also profiles phases flags the phase block
  // (kFlagPhases) instead of implying it from the version byte — v6 is
  // one layout, phases optional, engine block always last.
  auto t = sampleAsyncTelemetry();
  t.phaseProfiling = true;
  for (std::size_t p = 0; p < telemetry::kTickPhaseCount; ++p) {
    t.phases[p].count = 40 + p;
    t.phases[p].sum = 0.5 * static_cast<double>(p + 1);
    t.phases[p].buckets[8] = 10 + p;
  }
  const auto bytes = telemetry::encodeTelemetry(t);
  EXPECT_EQ(bytes[0], telemetry::kTelemetryVersionAsync);
  EXPECT_NE(bytes[1] & 0x02, 0) << "phase flag must be set on the wire";
  const auto d = telemetry::decodeTelemetry(bytes);
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->asyncNet);
  EXPECT_TRUE(d->phaseProfiling);
  expectTelemetryEq(*d, t);
  for (std::size_t p = 0; p < telemetry::kTickPhaseCount; ++p)
    EXPECT_EQ(d->phases[p], t.phases[p]);
  for (std::size_t i = 0; i < net::kEngineCounterCount; ++i)
    EXPECT_EQ(d->engine[i], t.engine[i]) << net::engineCounterName(i);
}

TEST(TelemetryWire, AsyncOffStaysByteIdenticalV4V5) {
  // The asyncNet=false encodings must be the EXACT pre-v6 bytes: a sync
  // node is indistinguishable on the wire from a build without the
  // engine at all.
  const auto plain = sampleTelemetry();
  EXPECT_EQ(telemetry::encodeTelemetry(plain)[0],
            telemetry::kTelemetryVersionPhaseless);
  auto phased = plain;
  phased.phaseProfiling = true;
  EXPECT_EQ(telemetry::encodeTelemetry(phased)[0],
            telemetry::kTelemetryVersion);
  // And v6 with phases off appends the engine block after the same v4
  // body, relabeled — nothing inserted mid-record.
  const auto v4 = telemetry::encodeTelemetry(plain);
  auto async = plain;
  async.asyncNet = true;  // all-zero engine counters
  const auto v6 = telemetry::encodeTelemetry(async);
  ASSERT_GT(v6.size(), v4.size());
  EXPECT_TRUE(std::equal(v4.begin() + 2, v4.end(), v6.begin() + 2))
      << "engine block must be appended after every v4 block";
}

TEST(TelemetryWire, TruncatedEngineBlockRejected) {
  // Chop the v6 record anywhere inside the trailing engine block: every
  // prefix must reject (the block is fixed-size, never defaulted).
  const auto t = sampleAsyncTelemetry();
  const auto full = telemetry::encodeTelemetry(t);
  const std::size_t engineBytes = 2 + 8 * net::kEngineCounterCount;
  for (std::size_t cut = 0; cut <= engineBytes; ++cut) {
    const auto prefix =
        std::span<const std::uint8_t>(full).first(full.size() - cut);
    if (cut == 0) {
      EXPECT_TRUE(telemetry::decodeTelemetry(prefix).has_value());
    } else {
      EXPECT_FALSE(telemetry::decodeTelemetry(prefix).has_value())
          << "cut " << cut << " bytes off the engine block";
    }
  }
}

TEST(TelemetryWire, EngineCountMismatchRejected) {
  // The engine block opens [u16 count]; a record claiming a different
  // counter table than this build's is a version skew, not a guess.
  const auto t = sampleAsyncTelemetry();
  const auto good = telemetry::encodeTelemetry(t);
  const std::size_t countAt = good.size() - (2 + 8 * net::kEngineCounterCount);
  ASSERT_EQ(good[countAt], net::kEngineCounterCount);
  ASSERT_EQ(good[countAt + 1], 0);
  auto bad = good;
  bad[countAt] = net::kEngineCounterCount + 1;
  EXPECT_FALSE(telemetry::decodeTelemetry(bad).has_value());
  bad[countAt] = net::kEngineCounterCount - 1;
  EXPECT_FALSE(telemetry::decodeTelemetry(bad).has_value());
}

TEST(TelemetryWire, PhaseFlagInvalidOutsideV6) {
  // kFlagPhases only exists in the v6 layout; on v4/v5 the phase block is
  // implied by the version byte, so the bit is an undefined flag there.
  auto v4 = telemetry::encodeTelemetry(sampleTelemetry());
  ASSERT_EQ(v4[0], telemetry::kTelemetryVersionPhaseless);
  v4[1] |= 0x02;
  EXPECT_FALSE(telemetry::decodeTelemetry(v4).has_value());
  auto v5 = telemetry::encodeTelemetry(samplePhasedTelemetry());
  ASSERT_EQ(v5[0], telemetry::kTelemetryVersion);
  v5[1] |= 0x02;
  EXPECT_FALSE(telemetry::decodeTelemetry(v5).has_value());
}

TEST(TelemetryWire, V6WithoutEngineBlockRejected) {
  // A record claiming version 6 must actually CARRY the engine block: a
  // v4-shaped record relabeled 6 is truncated input, not a quiet default.
  auto bytes = telemetry::encodeTelemetry(sampleTelemetry());
  bytes[0] = telemetry::kTelemetryVersionAsync;
  EXPECT_FALSE(telemetry::decodeTelemetry(bytes).has_value());
  // A v5-shaped record relabeled 6 fails too: v6 only reads phases under
  // kFlagPhases, so the unflagged phase bytes misparse as the engine
  // block's count and the record rejects.
  auto v5 = telemetry::encodeTelemetry(samplePhasedTelemetry());
  v5[0] = telemetry::kTelemetryVersionAsync;
  EXPECT_FALSE(telemetry::decodeTelemetry(v5).has_value());
}

TEST(TelemetryWire, EngineCounterTableIsStable) {
  // The engine counter order is the wire format; reordering must bump
  // kTelemetryVersionAsync. Spot-check the anchors.
  ASSERT_EQ(net::kEngineCounterCount, 9u);
  EXPECT_STREQ(net::engineCounterName(0), "engine.recvDatagrams");
  EXPECT_STREQ(net::engineCounterName(4), "engine.sendDatagrams");
  EXPECT_STREQ(net::engineCounterName(8), "engine.sendRingPeak");
  EXPECT_EQ(net::engineCounterName(9), nullptr);
}

TEST(TelemetryWire, CounterTableIsStable) {
  // The flattened counter order is the wire format; renaming or
  // reordering must bump kTelemetryVersion. Spot-check the anchors.
  ASSERT_EQ(telemetry::counterCount(), 50u);  // v4: 43 + 7 flow counters
  EXPECT_STREQ(telemetry::counterName(0), "cb.broadcastsSent");
  EXPECT_STREQ(telemetry::counterName(4), "cb.updatesSent");
  // The v4 flow-control counters are inserted in-group, so the table
  // still ends on the transport block.
  EXPECT_STREQ(telemetry::counterName(12), "cb.updatesThinned");
  EXPECT_STREQ(telemetry::counterName(telemetry::counterCount() - 1),
               "transport.framesDropped");
}

}  // namespace
}  // namespace cod::core
