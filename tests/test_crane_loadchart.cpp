#include "crane/load_chart.hpp"
#include "crane/safety.hpp"

#include <gtest/gtest.h>

namespace cod::crane {
namespace {

TEST(LoadChart, ExactGridPoints) {
  const LoadChart chart = LoadChart::typical25t();
  EXPECT_DOUBLE_EQ(chart.capacityKg(9.0, 3.0), 25000.0);
  EXPECT_DOUBLE_EQ(chart.capacityKg(26.0, 20.0), 1600.0);
}

TEST(LoadChart, BilinearBetweenPoints) {
  const LoadChart chart({10.0, 20.0}, {5.0, 15.0},
                        {{1000.0, 500.0}, {800.0, 400.0}});
  EXPECT_DOUBLE_EQ(chart.capacityKg(15.0, 10.0), 675.0);  // centre average
  EXPECT_DOUBLE_EQ(chart.capacityKg(10.0, 10.0), 750.0);
  EXPECT_DOUBLE_EQ(chart.capacityKg(15.0, 5.0), 900.0);
}

TEST(LoadChart, ClampsInsideAndZeroBeyondEnvelope) {
  const LoadChart chart = LoadChart::typical25t();
  // Short radius clamps to the first column.
  EXPECT_DOUBLE_EQ(chart.capacityKg(9.0, 1.0), chart.capacityKg(9.0, 3.0));
  // Beyond the last radius the crane simply cannot reach: zero rating.
  EXPECT_DOUBLE_EQ(chart.capacityKg(20.0, 25.0), 0.0);
  EXPECT_DOUBLE_EQ(chart.maxRadius(), 20.0);
}

TEST(LoadChart, CapacityFallsWithRadius) {
  const LoadChart chart = LoadChart::typical25t();
  double prev = 1e9;
  for (const double r : {3.0, 5.0, 8.0, 12.0, 16.0}) {
    const double cap = chart.capacityKg(14.0, r);
    EXPECT_LT(cap, prev) << "radius " << r;
    prev = cap;
  }
}

TEST(LoadChart, Utilisation) {
  const LoadChart chart = LoadChart::typical25t();
  EXPECT_DOUBLE_EQ(chart.utilisation(0.0, 9.0, 3.0), 0.0);
  EXPECT_DOUBLE_EQ(chart.utilisation(12500.0, 9.0, 3.0), 0.5);
  EXPECT_GT(chart.utilisation(30000.0, 9.0, 3.0), 1.0);
  // Any load outside the envelope is infinite utilisation.
  EXPECT_TRUE(std::isinf(chart.utilisation(100.0, 9.0, 25.0)));
}

TEST(LoadChart, RejectsMalformedTables) {
  EXPECT_THROW(LoadChart({10.0}, {5.0, 10.0}, {{1, 2}}),
               std::invalid_argument);
  EXPECT_THROW(LoadChart({20.0, 10.0}, {5.0, 10.0}, {{1, 2}, {3, 4}}),
               std::invalid_argument);
  EXPECT_THROW(LoadChart({10.0, 20.0}, {5.0, 10.0}, {{1, 2}}),
               std::invalid_argument);
  EXPECT_THROW(LoadChart({10.0, 20.0}, {5.0, 10.0}, {{1, 2}, {3}}),
               std::invalid_argument);
}

TEST(Outriggers, DeployCycleTiming) {
  Outriggers o(4.0);
  EXPECT_TRUE(o.stowed());
  EXPECT_EQ(o.state(), Outriggers::State::kStowed);
  o.requestDeploy();
  o.step(2.0);
  EXPECT_EQ(o.state(), Outriggers::State::kDeploying);
  EXPECT_NEAR(o.progress(), 0.5, 1e-9);
  o.step(2.5);
  EXPECT_TRUE(o.deployed());
  EXPECT_EQ(o.state(), Outriggers::State::kDeployed);
}

TEST(Outriggers, StowReverses) {
  Outriggers o(4.0);
  o.requestDeploy();
  o.step(10.0);
  o.requestStow();
  o.step(2.0);
  EXPECT_EQ(o.state(), Outriggers::State::kStowing);
  o.step(3.0);
  EXPECT_TRUE(o.stowed());
}

TEST(Outriggers, CapacityFactorDerates) {
  Outriggers o(1.0);
  EXPECT_DOUBLE_EQ(o.capacityFactor(), 0.25);  // on rubber
  o.requestDeploy();
  o.step(2.0);
  EXPECT_DOUBLE_EQ(o.capacityFactor(), 1.0);
}

TEST(SafetyWithChart, OutriggerDeratingTriggersOverload) {
  SafetyEnvelope env;
  env.setLoadChart(LoadChart::typical25t());
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = math::deg2rad(45.0);
  s.boomLengthM = 14.0;
  s.hookLoadKg = 4000.0;
  s.cargoAttached = true;
  SafetyEnvelope::Environment ctx;
  ctx.outriggersDeployed = true;
  EXPECT_FALSE(env.assess(s, kin, ctx).alarms.active(Alarm::kOverload));
  // The same lift on rubber keeps only 25% of the rating: overload.
  ctx.outriggersDeployed = false;
  const auto a = env.assess(s, kin, ctx);
  EXPECT_TRUE(a.alarms.active(Alarm::kOverload));
  EXPECT_TRUE(a.alarms.active(Alarm::kOutriggers));
}

TEST(SafetyWithChart, HighWindAlarm) {
  SafetyEnvelope env;
  CraneKinematics kin;
  CraneState s;
  SafetyEnvelope::Environment ctx;
  ctx.windSpeedMps = 8.0;
  EXPECT_FALSE(env.assess(s, kin, ctx).alarms.active(Alarm::kHighWind));
  ctx.windSpeedMps = 12.0;
  EXPECT_TRUE(env.assess(s, kin, ctx).alarms.active(Alarm::kHighWind));
}

TEST(SafetyWithChart, BeyondEnvelopeIsOverload) {
  SafetyEnvelope env;
  env.setLoadChart(LoadChart::typical25t());
  CraneKinematics kin;
  CraneState s;
  s.boomPitchRad = math::deg2rad(16.0);  // long reach, low boom
  s.boomLengthM = 26.0;                  // radius ~ 25 m: off the chart
  s.hookLoadKg = 200.0;
  const auto a = env.assess(s, kin, SafetyEnvelope::Environment{});
  EXPECT_TRUE(a.alarms.active(Alarm::kOverload));
}

}  // namespace
}  // namespace cod::crane
