// Cross-module parameterized property sweeps: invariants that must hold
// over whole parameter ranges, not just at hand-picked points.
#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "crane/load_chart.hpp"
#include "math/rng.hpp"
#include "platform/stewart.hpp"
#include "render/rasterizer.hpp"

namespace cod {
namespace {

// ---- CB: delivery under loss never duplicates and never reorders --------
class CbLossProperty : public ::testing::TestWithParam<double> {};

TEST_P(CbLossProperty, NoDuplicationNoReorder) {
  const double loss = GetParam();
  core::CodCluster::Config cfg;
  cfg.link.lossRate = loss;
  cfg.seed = 42 + static_cast<std::uint64_t>(loss * 100);
  core::CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");

  struct Counter : core::LogicalProcess {
    Counter() : core::LogicalProcess("counter") {}
    std::vector<std::int64_t> seen;
    void reflectAttributeValues(const std::string&, const core::AttributeSet& a,
                                double) override {
      seen.push_back(a.getInt("i"));
    }
  } sub;
  struct Src : core::LogicalProcess {
    Src() : core::LogicalProcess("src") {}
  } pub;
  cbA.attach(pub);
  const auto h = cbA.publishObjectClass(pub, "prop.data");
  cbB.attach(sub);
  const auto sh = cbB.subscribeObjectClass(sub, "prop.data");
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sh); }, 30.0))
      << "loss " << loss;
  for (int i = 0; i < 200; ++i) {
    core::AttributeSet a;
    a.set("i", i);
    cbA.updateAttributeValues(h, a, cluster.now());
    cluster.step(0.01);
  }
  cluster.step(0.5);
  // Strictly increasing: no duplicates, no reordering, whatever the loss.
  for (std::size_t i = 1; i < sub.seen.size(); ++i)
    EXPECT_LT(sub.seen[i - 1], sub.seen[i]);
  if (loss == 0.0) {
    EXPECT_EQ(sub.seen.size(), 200u);
  }
}

INSTANTIATE_TEST_SUITE_P(LossSweep, CbLossProperty,
                         ::testing::Values(0.0, 0.05, 0.2, 0.4));

// ---- Stewart: IK is rotation-invariant about the vertical axis ----------
class StewartYawProperty : public ::testing::TestWithParam<double> {};

TEST_P(StewartYawProperty, LegLengthMultisetInvariantUnderYaw) {
  // Yawing the platform pose by 120 deg permutes the legs of a symmetric
  // 6-6 platform; the sorted leg lengths must match.
  const double tilt = GetParam();
  const platform::StewartPlatform sp;
  platform::Pose pose = sp.homePose();
  pose.orientation = math::Quat::fromEuler(tilt, 0.0, 0.0);
  auto sortedLengths = [&](const platform::Pose& p) {
    auto sol = sp.inverseKinematics(p);
    std::array<double, 6> lengths = sol.lengths;
    std::sort(lengths.begin(), lengths.end());
    return lengths;
  };
  const auto base = sortedLengths(pose);
  const math::Quat yaw =
      math::Quat::fromAxisAngle({0, 0, 1}, math::deg2rad(120.0));
  platform::Pose rotated = pose;
  // Conjugation rotates the tilt *axis* by 120 deg (same tilt magnitude):
  // the symmetry operation of the 6-6 anchor layout.
  rotated.orientation = yaw * pose.orientation * yaw.conjugate();
  const auto turned = sortedLengths(rotated);
  for (int i = 0; i < 6; ++i) EXPECT_NEAR(base[i], turned[i], 1e-9);
}

INSTANTIATE_TEST_SUITE_P(TiltSweep, StewartYawProperty,
                         ::testing::Values(0.0, 0.05, 0.1, 0.2));

// ---- Load chart: capacity is monotone in radius everywhere --------------
class ChartMonotoneProperty : public ::testing::TestWithParam<double> {};

TEST_P(ChartMonotoneProperty, CapacityNeverRisesWithRadius) {
  const double boomLen = GetParam();
  const crane::LoadChart chart = crane::LoadChart::typical25t();
  double prev = 1e18;
  for (double r = 3.0; r <= 20.0; r += 0.25) {
    const double cap = chart.capacityKg(boomLen, r);
    EXPECT_LE(cap, prev + 1e-9) << "len " << boomLen << " radius " << r;
    prev = cap;
  }
}

INSTANTIATE_TEST_SUITE_P(BoomSweep, ChartMonotoneProperty,
                         ::testing::Values(9.0, 12.0, 14.0, 17.0, 20.0, 26.0));

// ---- Rasterizer: pixel output bounded by framebuffer, depth monotone ----
class RasterizerProperty : public ::testing::TestWithParam<int> {};

TEST_P(RasterizerProperty, CoverageBoundedAndDepthTested) {
  const int subdiv = GetParam();
  render::Scene scene;
  scene.add("sheet", render::Mesh::plane(8, 8, subdiv, {200, 0, 0}),
            math::Mat4::rigid(
                math::Quat::fromAxisAngle({0, 1, 0}, math::kPi / 2),
                {4, 0, 0}));
  // A second, nearer sheet occludes the first everywhere they overlap.
  scene.add("front", render::Mesh::plane(8, 8, subdiv, {0, 0, 200}),
            math::Mat4::rigid(
                math::Quat::fromAxisAngle({0, 1, 0}, math::kPi / 2),
                {2, 0, 0}));
  render::Camera cam;
  cam.lookAt({-6, 0, 0}, {0, 0, 0});
  render::Framebuffer fb(48, 36);
  fb.clear({0, 0, 0});
  render::Rasterizer raster;
  raster.render(scene, cam, fb);
  EXPECT_LE(fb.coverage(), 1.0);
  EXPECT_GT(fb.coverage(), 0.1);
  // Every covered pixel shows the *near* (blue) sheet where both project;
  // sample the centre region.
  int nearWins = 0, farWins = 0;
  for (int y = 12; y < 24; ++y) {
    for (int x = 16; x < 32; ++x) {
      const std::uint32_t p = fb.pixel(x, y);
      if ((p & 0xFF) > ((p >> 16) & 0xFF)) ++nearWins;
      if ((p & 0xFF) < ((p >> 16) & 0xFF)) ++farWins;
    }
  }
  EXPECT_GT(nearWins, 0);
  EXPECT_EQ(farWins, 0) << "far sheet leaked through the z-buffer";
}

INSTANTIATE_TEST_SUITE_P(SubdivSweep, RasterizerProperty,
                         ::testing::Values(1, 4, 8, 16));

// ---- RNG: uniformInt covers every bucket in range ------------------------
class RngBucketProperty : public ::testing::TestWithParam<int> {};

TEST_P(RngBucketProperty, AllBucketsHit) {
  const int buckets = GetParam();
  math::Rng rng(1000 + buckets);
  std::vector<int> histogram(buckets, 0);
  for (int i = 0; i < buckets * 200; ++i)
    ++histogram[rng.uniformInt(0, buckets - 1)];
  for (int b = 0; b < buckets; ++b)
    EXPECT_GT(histogram[b], 0) << "bucket " << b << " of " << buckets;
}

INSTANTIATE_TEST_SUITE_P(BucketSweep, RngBucketProperty,
                         ::testing::Values(2, 7, 16, 100));

}  // namespace
}  // namespace cod
