// The async network engine: SPSC ring semantics (including the
// concurrent cases TSan is pointed at), mmsg-vs-fallback syscall
// equivalence on real sockets, and AsyncTransport end-to-end over
// loopback — alone and under a full CB.
#include "net/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "core/cb.hpp"
#include "net/udp.hpp"
#include "telemetry/node_telemetry.hpp"
#include "telemetry/registry.hpp"

namespace cod::net {
namespace {

UdpConfig testConfig() {
  UdpConfig cfg;
  cfg.portsPerHost = 4;
  cfg.maxHosts = 4;
  // Kernel-assigned, not constant: parallel test lanes (or a concurrent
  // soak run) must not race each other for a fixed port range.
  cfg.basePort = pickEphemeralBasePort(
      static_cast<std::uint16_t>(cfg.portsPerHost * cfg.maxHosts));
  return cfg;
}

std::optional<Datagram> receiveWithRetry(Transport& t, int attempts = 500) {
  for (int i = 0; i < attempts; ++i) {
    if (auto d = t.receive()) return d;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

// Drain up to `want` datagrams, polling until `attempts` empty polls in a
// row (loopback delivery is fast but not instantaneous).
std::vector<Datagram> drain(Transport& t, std::size_t want,
                            int attempts = 500) {
  std::vector<Datagram> got;
  int idle = 0;
  while (got.size() < want && idle < attempts) {
    std::array<Datagram, 8> burst;
    const std::size_t n = t.receiveBatch(burst);
    if (n == 0) {
      ++idle;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      continue;
    }
    idle = 0;
    for (std::size_t i = 0; i < n; ++i) got.push_back(std::move(burst[i]));
  }
  return got;
}

std::vector<std::uint8_t> numberedPayload(std::uint8_t tag, std::size_t len) {
  std::vector<std::uint8_t> p(len);
  for (std::size_t i = 0; i < len; ++i)
    p[i] = static_cast<std::uint8_t>(tag + i);
  return p;
}

// ---- SpscRing ----------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
}

TEST(SpscRing, FifoAcrossManyWraparounds) {
  SpscRing<int> ring(4);  // tiny: every 4 pushes lap the buffer
  int next = 0;
  for (int i = 0; i < 1000; ++i) {
    int* slot = ring.beginPush();
    ASSERT_NE(slot, nullptr);
    *slot = i;
    ring.commitPush();
    if (i % 3 == 2) {  // drain in a different cadence than the fill
      for (int k = 0; k < 3; ++k) {
        int* f = ring.front();
        ASSERT_NE(f, nullptr);
        EXPECT_EQ(*f, next++);
        ring.pop();
      }
    }
  }
  while (int* f = ring.front()) {
    EXPECT_EQ(*f, next++);
    ring.pop();
  }
  EXPECT_EQ(next, 1000);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, FullRingRefusesUntilDrained) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) {
    int* slot = ring.beginPush();
    ASSERT_NE(slot, nullptr);
    *slot = i;
    ring.commitPush();
  }
  EXPECT_EQ(ring.beginPush(), nullptr);
  EXPECT_EQ(ring.approxSize(), 4u);
  ring.pop();
  int* slot = ring.beginPush();
  ASSERT_NE(slot, nullptr);
  *slot = 4;
  ring.commitPush();
  EXPECT_EQ(ring.beginPush(), nullptr);  // full again
}

TEST(SpscRing, PeekBuildsRunsWithoutPopping) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) {
    *ring.beginPush() = 10 + i;
    ring.commitPush();
  }
  for (int i = 0; i < 5; ++i) {
    int* p = ring.peek(static_cast<std::size_t>(i));
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(*p, 10 + i);
  }
  EXPECT_EQ(ring.peek(5), nullptr);
  ring.pop(3);  // release the run in one step, like the send thread
  ASSERT_NE(ring.front(), nullptr);
  EXPECT_EQ(*ring.front(), 13);
  EXPECT_EQ(ring.approxSize(), 2u);
}

TEST(SpscRing, SlotStorageSurvivesLaps) {
  // The whole point of begin/commit: vectors inside slots keep their
  // heap capacity across laps, so steady state does not allocate.
  SpscRing<std::vector<std::uint8_t>> ring(2);
  ring.beginPush()->assign(4096, 0xAB);
  ring.commitPush();
  const std::uint8_t* heap = ring.front()->data();
  const std::size_t cap = ring.front()->capacity();
  ring.front()->clear();  // consumer drains but does not shrink
  ring.pop();
  for (int lap = 0; lap < 8; ++lap) {
    std::vector<std::uint8_t>* slot = ring.beginPush();
    ASSERT_LE(slot->size(), slot->capacity());
    slot->resize(4096);
    ring.commitPush();
    if (slot->data() == heap) {
      EXPECT_EQ(slot->capacity(), cap);
    }
    ring.front()->clear();
    ring.pop();
  }
}

TEST(SpscRing, ConcurrentProducerConsumerStress) {
  // One producer thread, one consumer thread, a ring small enough that
  // both full and empty edges are hit constantly. Run under
  // COD_SANITIZE=thread this is the engine's memory-ordering proof.
  constexpr std::uint64_t kCount = 200000;
  SpscRing<std::uint64_t> ring(16);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kCount;) {
      if (std::uint64_t* slot = ring.beginPush()) {
        *slot = i * 2654435761u;  // value derived from index, not index
        ring.commitPush();
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  std::uint64_t seen = 0;
  bool ok = true;
  while (seen < kCount) {
    if (std::uint64_t* f = ring.front()) {
      ok = ok && (*f == seen * 2654435761u);
      ring.pop();
      ++seen;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ok) << "ring reordered or corrupted a value";
  EXPECT_TRUE(ring.empty());
}

// ---- Engine counter table ----------------------------------------------

TEST(EngineStats, CounterAccessorsRoundTrip) {
  AsyncEngineStats s;
  for (std::size_t i = 0; i < kEngineCounterCount; ++i)
    setEngineCounterValue(s, i, 100 + i);
  EXPECT_EQ(s.recvDatagrams, 100u);
  EXPECT_EQ(s.sendRingPeak, 108u);
  for (std::size_t i = 0; i < kEngineCounterCount; ++i) {
    EXPECT_EQ(engineCounterValue(s, i), 100 + i) << engineCounterName(i);
    EXPECT_NE(engineCounterName(i), nullptr);
  }
}

// ---- mmsg syscalls vs portable fallback --------------------------------

TEST(UdpMmsg, ReceiveBatchMatchesFallback) {
  // The same 12 datagrams, read once through recvmmsg and once through
  // the portable one-recvfrom-per-datagram fallback: identical payload
  // sequences (loopback preserves order per flow).
  const UdpConfig cfg = testConfig();
  UdpTransport a(cfg, 0, 0);
  UdpTransport b(cfg, 1, 0);
  std::vector<std::vector<std::uint8_t>> sent;
  for (std::uint8_t i = 0; i < 12; ++i)
    sent.push_back(numberedPayload(i, 32 + i));

  for (const bool mmsg : {true, false}) {
    b.useMmsgSyscalls(mmsg);
    for (const auto& p : sent) a.send({1, 0}, p);
    const auto got = drain(b, sent.size());
    ASSERT_EQ(got.size(), sent.size()) << "mmsg=" << mmsg;
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].payload, sent[i]) << "mmsg=" << mmsg << " i=" << i;
      EXPECT_EQ(got[i].src, (NodeAddr{0, 0}));
      EXPECT_EQ(got[i].dst, (NodeAddr{1, 0}));
    }
  }
}

TEST(UdpMmsg, SendManyMatchesIndividualSends) {
  const UdpConfig cfg = testConfig();
  UdpTransport a(cfg, 0, 1);
  UdpTransport b(cfg, 1, 1);
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::uint8_t i = 0; i < 10; ++i)
    payloads.push_back(numberedPayload(static_cast<std::uint8_t>(0x40 + i),
                                       16 + i));
  for (const bool mmsg : {true, false}) {
    a.useMmsgSyscalls(mmsg);
    std::vector<OutDatagram> burst;
    for (const auto& p : payloads) burst.push_back({{1, 1}, p});
    a.sendMany(burst);
    const auto got = drain(b, payloads.size());
    ASSERT_EQ(got.size(), payloads.size()) << "mmsg=" << mmsg;
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i].payload, payloads[i]) << "mmsg=" << mmsg;
  }
  const TransportStats* st = a.stats();
  ASSERT_NE(st, nullptr);
  EXPECT_EQ(st->packetsSent, 2 * payloads.size());
  EXPECT_EQ(st->packetsDropped, 0u);
}

TEST(UdpMmsg, SendvGathersToOneDatagram) {
  // A scatter-gather send must land as ONE datagram whose payload is the
  // concatenation of the parts — exactly what send() of the linearized
  // buffer produces.
  const UdpConfig cfg = testConfig();
  UdpTransport a(cfg, 0, 2);
  UdpTransport b(cfg, 1, 2);
  const std::vector<std::uint8_t> h{0xAA, 0xBB};
  const std::vector<std::uint8_t> mid = numberedPayload(1, 100);
  const std::vector<std::uint8_t> tail{0xEE};
  std::vector<std::uint8_t> linear;
  linear.insert(linear.end(), h.begin(), h.end());
  linear.insert(linear.end(), mid.begin(), mid.end());
  linear.insert(linear.end(), tail.begin(), tail.end());

  const std::array<ByteSpan, 3> parts{ByteSpan{h}, ByteSpan{mid},
                                      ByteSpan{tail}};
  a.sendv({1, 2}, parts);
  const auto d = receiveWithRetry(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload, linear);
  EXPECT_FALSE(b.receive().has_value()) << "sendv split into >1 datagram";
}

TEST(UdpMmsg, BurstLargerThanOneSyscallBatch) {
  // More datagrams than kMmsgBurst: the loop must issue multiple
  // sendmmsg/recvmmsg calls and lose nothing.
  const UdpConfig cfg = testConfig();
  UdpTransport a(cfg, 0, 3);
  UdpTransport b(cfg, 1, 3);
  const std::size_t n = UdpTransport::kMmsgBurst * 2 + 5;
  std::vector<std::vector<std::uint8_t>> payloads;
  for (std::size_t i = 0; i < n; ++i)
    payloads.push_back(numberedPayload(static_cast<std::uint8_t>(i), 8));
  std::vector<OutDatagram> burst;
  for (const auto& p : payloads) burst.push_back({{1, 3}, p});
  a.sendMany(burst);
  const auto got = drain(b, n);
  ASSERT_EQ(got.size(), n);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(got[i].payload, payloads[i]);
}

// ---- AsyncTransport over loopback --------------------------------------

TEST(AsyncEngine, LoopbackSmoke) {
  const UdpConfig cfg = testConfig();
  AsyncNetConfig acfg;
  acfg.laneName = "test-a";
  AsyncTransport a(std::make_unique<UdpTransport>(cfg, 0, 0), acfg);
  AsyncNetConfig bcfg;
  bcfg.laneName = "test-b";
  AsyncTransport b(std::make_unique<UdpTransport>(cfg, 1, 0), bcfg);

  EXPECT_EQ(a.localAddress(), (NodeAddr{0, 0}));
  const auto payload = numberedPayload(7, 64);
  a.send({1, 0}, payload);
  const auto d = receiveWithRetry(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload, payload);
  EXPECT_EQ(d->src, (NodeAddr{0, 0}));

  // sendv crosses the ring as one gathered datagram.
  const std::vector<std::uint8_t> p1{1, 2, 3};
  const std::vector<std::uint8_t> p2{4, 5};
  const std::array<ByteSpan, 2> parts{ByteSpan{p1}, ByteSpan{p2}};
  a.sendv({1, 0}, parts);
  const auto d2 = receiveWithRetry(b);
  ASSERT_TRUE(d2.has_value());
  EXPECT_EQ(d2->payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));

  // Broadcast crosses the engine too.
  a.broadcast(0, std::vector<std::uint8_t>{99});
  const auto d3 = receiveWithRetry(b);
  ASSERT_TRUE(d3.has_value());
  EXPECT_EQ(d3->payload, (std::vector<std::uint8_t>{99}));

  // The engine's own stats saw the traffic; engineStats counts syscall
  // batches and ring traffic on both ends.
  const TransportStats* st = a.stats();
  ASSERT_NE(st, nullptr);
  EXPECT_GE(st->packetsSent, 3u);
  const AsyncEngineStats ea = a.engineStats();
  EXPECT_GE(ea.sendDatagrams, 3u);
  EXPECT_GE(ea.sendBatches, 1u);
  const AsyncEngineStats eb = b.engineStats();
  EXPECT_GE(eb.recvDatagrams, 3u);
  EXPECT_GE(eb.recvBatches, 1u);
  EXPECT_GE(eb.recvRingPeak, 1u);
  EXPECT_GE(b.stats()->packetsReceived, 3u);
}

TEST(AsyncEngine, ShutdownDrainsStagedSends) {
  // Destroying the engine right after staging a burst must still deliver
  // it: the send thread drains the ring before honoring the stop flag
  // (this is what carries the CB's farewell BYE flush).
  const UdpConfig cfg = testConfig();
  UdpTransport receiver(cfg, 1, 1);
  const std::size_t n = 20;
  {
    AsyncTransport a(std::make_unique<UdpTransport>(cfg, 0, 1), {});
    for (std::size_t i = 0; i < n; ++i)
      a.send({1, 1}, numberedPayload(static_cast<std::uint8_t>(i), 16));
  }  // ~AsyncTransport: drain, join, then inner teardown
  const auto got = drain(receiver, n);
  EXPECT_EQ(got.size(), n);
}

TEST(AsyncEngine, FullSendRingDropsAndCounts) {
  // A tiny ring with no consumer fast enough: pushes past capacity must
  // drop-and-count, never block the caller forever or crash.
  const UdpConfig cfg = testConfig();
  AsyncNetConfig acfg;
  acfg.sendRingCapacity = 4;
  acfg.sendStallSpins = 1;
  AsyncTransport a(std::make_unique<UdpTransport>(cfg, 0, 2), acfg);
  const auto payload = numberedPayload(3, 1200);
  for (int i = 0; i < 5000; ++i) a.send({1, 2}, payload);
  // Every call is accounted for: it either entered the ring (packetsSent,
  // counted at push time) or dropped after the spin budget.
  const AsyncEngineStats es = a.engineStats();
  EXPECT_EQ(a.stats()->packetsSent + es.sendRingDrops, 5000u);
  EXPECT_LE(es.sendRingPeak, 4u);
}

// ---- Full CB over the async engine -------------------------------------

double wallClock() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class RecordingLp : public core::LogicalProcess {
 public:
  RecordingLp() : LogicalProcess("lp") {}
  std::vector<double> values;
  void reflectAttributeValues(const std::string&, const core::AttributeSet& a,
                              double) override {
    values.push_back(a.getDouble("v"));
  }
};

TEST(AsyncEngine, CbEndToEndWithAsyncNet) {
  const UdpConfig cfg = testConfig();
  core::CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.01;
  cbCfg.asyncNet = true;
  core::CommunicationBackbone cbA(
      "async-a", std::make_unique<UdpTransport>(cfg, 0, 3), cbCfg);
  core::CommunicationBackbone cbB(
      "async-b", std::make_unique<UdpTransport>(cfg, 1, 3), cbCfg);
  ASSERT_NE(cbA.asyncEngine(), nullptr);
  ASSERT_NE(cbB.asyncEngine(), nullptr);

  RecordingLp pub, sub;
  cbA.attach(pub);
  const auto h = cbA.publishObjectClass(pub, "async.demo");
  cbB.attach(sub);
  const auto sh = cbB.subscribeObjectClass(sub, "async.demo");

  const double deadline = wallClock() + 5.0;
  while (!cbB.connected(sh) && wallClock() < deadline) {
    cbA.tick(wallClock());
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(cbB.connected(sh)) << "discovery did not converge over the "
                                    "async engine";

  for (int i = 0; i < 50; ++i) {
    core::AttributeSet a;
    a.set("v", static_cast<double>(i));
    cbA.updateAttributeValues(h, a, wallClock());
    cbA.tick(wallClock());
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double drainDeadline = wallClock() + 1.0;
  while (sub.values.size() < 50 && wallClock() < drainDeadline) {
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sub.values.size(), 45u);
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);

  // Engine health is visible and flows into wire-v6 telemetry.
  const AsyncEngineStats es = cbA.asyncEngine()->engineStats();
  EXPECT_GT(es.sendDatagrams, 0u);
  EXPECT_GT(cbB.asyncEngine()->engineStats().recvDatagrams, 0u);
  telemetry::StatRegistry reg(cbA);
  const telemetry::NodeTelemetry t = reg.snapshot(wallClock());
  EXPECT_TRUE(t.asyncNet);
  EXPECT_GT(t.engine[4], 0u);  // engine.sendDatagrams
  const auto bytes = telemetry::encodeTelemetry(t);
  EXPECT_EQ(bytes[0], telemetry::kTelemetryVersionAsync);
  const auto decoded = telemetry::decodeTelemetry(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->engine, t.engine);
}

}  // namespace
}  // namespace cod::net
