#include "scenario/exam.hpp"
#include "scenario/operator.hpp"

#include <gtest/gtest.h>

namespace cod::scenario {
namespace {

ExamObservation baseObs(double t) {
  ExamObservation o;
  o.timeSec = t;
  return o;
}

class ExamTest : public ::testing::Test {
 protected:
  Course course = compactCourse();
  Exam exam{compactCourse()};

  /// Walk the carrier through every drive waypoint.
  void completeDrive(double& t) {
    for (const Waypoint& w : course.driveRoute) {
      ExamObservation o = baseObs(t += 1.0);
      o.carrierPosition = w.position;
      exam.observe(o);
    }
  }
};

TEST_F(ExamTest, StartsInDrivePhase) {
  EXPECT_EQ(exam.phase(), ExamPhase::kDriveToSite);
  EXPECT_DOUBLE_EQ(exam.score().total, 100.0);
}

TEST_F(ExamTest, WaypointsAdvanceInOrder) {
  double t = 0;
  ExamObservation far = baseObs(t += 1.0);
  far.carrierPosition = {999, 999};
  exam.observe(far);
  EXPECT_EQ(exam.nextWaypoint(), 0u);
  ExamObservation atFirst = baseObs(t += 1.0);
  atFirst.carrierPosition = course.driveRoute[0].position;
  exam.observe(atFirst);
  EXPECT_EQ(exam.nextWaypoint(), 1u);
  EXPECT_EQ(exam.phase(), ExamPhase::kDriveToSite);
}

TEST_F(ExamTest, DriveCompletionEntersLiftPhase) {
  double t = 0;
  completeDrive(t);
  EXPECT_EQ(exam.phase(), ExamPhase::kLiftCargo);
}

TEST_F(ExamTest, FullPassingRun) {
  double t = 0;
  completeDrive(t);
  // Lift: cargo attached and raised.
  ExamObservation lifted = baseObs(t += 5.0);
  lifted.cargoAttached = true;
  lifted.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                          2.0};
  exam.observe(lifted);
  EXPECT_EQ(exam.phase(), ExamPhase::kTraverseOut);
  // Traverse: cargo reaches the drop zone.
  ExamObservation out = baseObs(t += 20.0);
  out.cargoAttached = true;
  out.cargoPosition = {course.dropZone.center.x, course.dropZone.center.y, 2.0};
  exam.observe(out);
  EXPECT_EQ(exam.phase(), ExamPhase::kReturnCargo);
  // Return: cargo back over the pick zone.
  ExamObservation back = baseObs(t += 20.0);
  back.cargoAttached = true;
  back.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                        2.0};
  exam.observe(back);
  EXPECT_EQ(exam.phase(), ExamPhase::kSetDown);
  // Set down inside the zone.
  ExamObservation down = baseObs(t += 5.0);
  down.cargoAttached = false;
  down.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                        0.5};
  exam.observe(down);
  EXPECT_EQ(exam.phase(), ExamPhase::kPassed);
  EXPECT_DOUBLE_EQ(exam.score().total, 100.0);
  EXPECT_TRUE(exam.score().finished());
}

TEST_F(ExamTest, BarCollisionsDeductTenEach) {
  double t = 0;
  ExamObservation o = baseObs(t += 1.0);
  o.barHits = {0};
  exam.observe(o);
  EXPECT_DOUBLE_EQ(exam.score().total, 90.0);
  ExamObservation two = baseObs(t += 1.0);
  two.barHits = {0, 0};
  exam.observe(two);
  EXPECT_DOUBLE_EQ(exam.score().total, 70.0);
  ASSERT_EQ(exam.score().deductions.size(), 3u);
  EXPECT_NE(exam.score().deductions[0].reason.find("bar 0"),
            std::string::npos);
}

TEST_F(ExamTest, AlarmsAreEdgeTriggered) {
  double t = 0;
  ExamObservation on = baseObs(t += 1.0);
  on.alarmBits = 0b11;  // two lamps light up
  exam.observe(on);
  EXPECT_DOUBLE_EQ(exam.score().total, 96.0);  // 2 alarms x 2 points
  // Holding the same lamps costs nothing more.
  ExamObservation still = baseObs(t += 1.0);
  still.alarmBits = 0b11;
  exam.observe(still);
  EXPECT_DOUBLE_EQ(exam.score().total, 96.0);
  // A new lamp costs again.
  ExamObservation more = baseObs(t += 1.0);
  more.alarmBits = 0b111;
  exam.observe(more);
  EXPECT_DOUBLE_EQ(exam.score().total, 94.0);
}

TEST_F(ExamTest, DropOutsideZoneDeducts) {
  double t = 0;
  completeDrive(t);
  ExamObservation lifted = baseObs(t += 1.0);
  lifted.cargoAttached = true;
  lifted.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                          2.0};
  exam.observe(lifted);
  ExamObservation out = baseObs(t += 1.0);
  out.cargoAttached = true;
  out.cargoPosition = {course.dropZone.center.x, course.dropZone.center.y, 2.0};
  exam.observe(out);
  ExamObservation back = baseObs(t += 1.0);
  back.cargoAttached = true;
  back.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                        2.0};
  exam.observe(back);
  // Released 3 m away from the zone centre (zone radius is 1.5 m).
  ExamObservation miss = baseObs(t += 1.0);
  miss.cargoAttached = false;
  miss.cargoPosition = {course.pickZone.center.x + 3.0,
                        course.pickZone.center.y, 0.5};
  exam.observe(miss);
  EXPECT_TRUE(exam.score().finished());
  EXPECT_DOUBLE_EQ(exam.score().total, 80.0);
}

TEST_F(ExamTest, FailsBelowThreshold) {
  double t = 0;
  for (int i = 0; i < 4; ++i) {
    ExamObservation o = baseObs(t += 1.0);
    o.barHits = {static_cast<std::size_t>(i % 1)};
    exam.observe(o);
  }
  EXPECT_DOUBLE_EQ(exam.score().total, 60.0);  // below the 70 pass threshold
  // Even completing everything now yields FAILED.
  completeDrive(t);
  ExamObservation lifted = baseObs(t += 1.0);
  lifted.cargoAttached = true;
  lifted.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                          2.0};
  exam.observe(lifted);
  ExamObservation out = baseObs(t += 1.0);
  out.cargoAttached = true;
  out.cargoPosition = {course.dropZone.center.x, course.dropZone.center.y, 2.0};
  exam.observe(out);
  ExamObservation back = baseObs(t += 1.0);
  back.cargoAttached = true;
  back.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                        2.0};
  exam.observe(back);
  ExamObservation down = baseObs(t += 1.0);
  down.cargoAttached = false;
  down.cargoPosition = {course.pickZone.center.x, course.pickZone.center.y,
                        0.5};
  exam.observe(down);
  EXPECT_EQ(exam.phase(), ExamPhase::kFailed);
}

TEST_F(ExamTest, HardTimeoutAborts) {
  ExamObservation late = baseObs(2.0 * course.timeLimitSec + 1.0);
  exam.observe(late);
  EXPECT_TRUE(exam.score().finished());
  EXPECT_EQ(exam.phase(), ExamPhase::kFailed);
  EXPECT_DOUBLE_EQ(exam.score().total, 0.0);
}

TEST_F(ExamTest, OverTimeDeductionOnFinish) {
  Course quick = compactCourse();
  quick.timeLimitSec = 10.0;
  Exam e(quick);
  double t = 11.0;  // already over the limit when things happen
  for (const Waypoint& w : quick.driveRoute) {
    ExamObservation o = baseObs(t += 0.5);
    o.carrierPosition = w.position;
    e.observe(o);
  }
  ExamObservation lifted = baseObs(t += 0.5);
  lifted.cargoAttached = true;
  lifted.cargoPosition = {quick.pickZone.center.x, quick.pickZone.center.y,
                          2.0};
  e.observe(lifted);
  ExamObservation out = baseObs(t += 0.5);
  out.cargoAttached = true;
  out.cargoPosition = {quick.dropZone.center.x, quick.dropZone.center.y, 2.0};
  e.observe(out);
  ExamObservation back = baseObs(t += 0.5);
  back.cargoAttached = true;
  back.cargoPosition = {quick.pickZone.center.x, quick.pickZone.center.y, 2.0};
  e.observe(back);
  ExamObservation down = baseObs(t += 0.5);
  down.cargoAttached = false;
  down.cargoPosition = {quick.pickZone.center.x, quick.pickZone.center.y, 0.5};
  e.observe(down);
  EXPECT_TRUE(e.score().finished());
  EXPECT_LT(e.score().total, 100.0);
  bool hasOvertime = false;
  for (const Deduction& d : e.score().deductions)
    hasOvertime |= d.reason.find("over time") != std::string::npos;
  EXPECT_TRUE(hasOvertime);
}

TEST(Course, StandardCourseIsWellFormed) {
  const Course c = standardLicensureCourse();
  EXPECT_FALSE(c.driveRoute.empty());
  EXPECT_FALSE(c.bars.empty());
  EXPECT_GE(c.cargoPath.size(), 2u);
  EXPECT_GT(c.driveDistance(), 50.0);
  // The cargo path starts at the pick zone and ends at the drop zone.
  EXPECT_NEAR((c.cargoPath.front() - c.pickZone.center).norm(), 0.0, 1.0);
  EXPECT_NEAR((c.cargoPath.back() - c.dropZone.center).norm(), 0.0, 1.0);
}

TEST(Operator, DrivesTowardFirstWaypoint) {
  const Course c = compactCourse();
  ScriptedOperator op(c, OperatorProfile::careful());
  OperatorObservation obs;
  obs.phase = ExamPhase::kDriveToSite;
  obs.carrierPosition = c.startPosition;
  obs.carrierHeadingRad = 0.0;  // waypoint is straight ahead on +x
  const crane::CraneControls ctl = op.decide(obs);
  EXPECT_TRUE(ctl.ignition);
  EXPECT_GT(ctl.throttle, 0.5);
  EXPECT_NEAR(ctl.steering, 0.0, 0.1);
}

TEST(Operator, SteersTowardOffAxisWaypoint) {
  const Course c = compactCourse();
  ScriptedOperator op(c, OperatorProfile::careful());
  OperatorObservation obs;
  obs.phase = ExamPhase::kDriveToSite;
  obs.carrierPosition = c.startPosition;
  obs.carrierHeadingRad = -math::kPi / 2;  // facing the wrong way
  const crane::CraneControls ctl = op.decide(obs);
  EXPECT_GT(ctl.steering, 0.5);  // hard left back toward the route
}

TEST(Operator, StopsWhenExamFinished) {
  const Course c = compactCourse();
  ScriptedOperator op(c, OperatorProfile::careful());
  OperatorObservation obs;
  obs.phase = ExamPhase::kPassed;
  const crane::CraneControls ctl = op.decide(obs);
  EXPECT_FALSE(ctl.ignition);
  EXPECT_DOUBLE_EQ(ctl.brake, 1.0);
}

TEST(Operator, LatchesWhenHookOverCargo) {
  const Course c = compactCourse();
  ScriptedOperator op(c, OperatorProfile::careful());
  OperatorObservation obs;
  obs.phase = ExamPhase::kLiftCargo;
  obs.carrierPosition = c.craneParkPosition;
  obs.cargoPosition = {c.pickZone.center.x, c.pickZone.center.y, 0.5};
  obs.hookPosition = {c.pickZone.center.x, c.pickZone.center.y, 1.2};
  obs.boomTip = {c.pickZone.center.x, c.pickZone.center.y, 9.0};
  obs.cableLengthM = 7.8;
  obs.outriggersDeployed = true;  // pads set: latch is allowed
  const crane::CraneControls ctl = op.decide(obs);
  EXPECT_TRUE(ctl.hookLatch);
  EXPECT_TRUE(ctl.outriggersDeploy);
  // With the pads still up the operator refuses to take the load.
  obs.outriggersDeployed = false;
  scenario::ScriptedOperator op2(c, OperatorProfile::careful());
  EXPECT_FALSE(op2.decide(obs).hookLatch);
}

TEST(Operator, ProfilesDiffer) {
  const OperatorProfile careful = OperatorProfile::careful();
  const OperatorProfile sloppy = OperatorProfile::sloppy();
  EXPECT_GT(careful.carryHeightM, sloppy.carryHeightM);
  EXPECT_LT(careful.slewCapWithCargo, sloppy.slewCapWithCargo);
}

TEST(PhaseNames, AllDefined) {
  for (int i = 0; i <= static_cast<int>(ExamPhase::kFailed); ++i)
    EXPECT_STRNE(phaseName(static_cast<ExamPhase>(i)), "?");
}

}  // namespace
}  // namespace cod::scenario
