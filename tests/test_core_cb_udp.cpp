// The CB protocol over real UDP sockets (the deployment transport): the
// identical state machines that run on SimNetwork must converge on the
// loopback interface with wall-clock ticking.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/cb.hpp"
#include "net/udp.hpp"

namespace cod::core {
namespace {

net::UdpConfig testConfig() {
  net::UdpConfig cfg;
  cfg.portsPerHost = 4;
  cfg.maxHosts = 4;
  // Kernel-reserved (bind port 0, read back): fixed bases collide when
  // test lanes run in parallel on one machine.
  cfg.basePort = net::pickEphemeralBasePort(
      static_cast<std::uint16_t>(cfg.portsPerHost * cfg.maxHosts));
  return cfg;
}

double wallClock() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class RecordingLp : public LogicalProcess {
 public:
  RecordingLp() : LogicalProcess("lp") {}
  std::vector<double> values;
  void reflectAttributeValues(const std::string&, const AttributeSet& a,
                              double) override {
    values.push_back(a.getDouble("v"));
  }
};

TEST(CbOverUdp, DiscoveryAndUpdatesOnLoopback) {
  const net::UdpConfig cfg = testConfig();
  CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.01;  // fast discovery for a quick test
  CommunicationBackbone cbA(
      "udp-a", std::make_unique<net::UdpTransport>(cfg, 0, 1), cbCfg);
  CommunicationBackbone cbB(
      "udp-b", std::make_unique<net::UdpTransport>(cfg, 1, 1), cbCfg);

  RecordingLp pub, sub;
  cbA.attach(pub);
  const auto h = cbA.publishObjectClass(pub, "udp.demo");
  cbB.attach(sub);
  const auto sh = cbB.subscribeObjectClass(sub, "udp.demo");

  // Tick both CBs with the wall clock until the channel is live.
  const double deadline = wallClock() + 5.0;
  while (!cbB.connected(sh) && wallClock() < deadline) {
    cbA.tick(wallClock());
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(cbB.connected(sh)) << "discovery did not converge over UDP";
  EXPECT_EQ(cbA.channelCount(h), 1u);

  // Updates flow end to end (loopback is reliable in practice, but allow
  // for scheduling: require at least most of them).
  for (int i = 0; i < 50; ++i) {
    AttributeSet a;
    a.set("v", static_cast<double>(i));
    cbA.updateAttributeValues(h, a, wallClock());
    cbA.tick(wallClock());
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double drainDeadline = wallClock() + 1.0;
  while (sub.values.size() < 50 && wallClock() < drainDeadline) {
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sub.values.size(), 45u);
  // Sequence-number dedup guarantees strictly increasing delivery.
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);
}

TEST(CbOverUdp, ChannelTimeoutAndRediscoveryOnLoopback) {
  // The soak harness's restart seam, isolated: a publisher goes silent
  // past the channel timeout (here by simply not being ticked — its
  // process "hangs"), the subscriber tears the channel down and resumes
  // discovery, and when the publisher returns the pair re-handshakes a
  // fresh channel and data flows again.
  const net::UdpConfig cfg = testConfig();
  CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.01;
  cbCfg.heartbeatIntervalSec = 0.05;
  cbCfg.channelTimeoutSec = 0.3;
  cbCfg.connectRetrySec = 0.05;
  CommunicationBackbone cbPub(
      "udp-pub", std::make_unique<net::UdpTransport>(cfg, 0, 1), cbCfg);
  CommunicationBackbone cbSub(
      "udp-sub", std::make_unique<net::UdpTransport>(cfg, 1, 1), cbCfg);
  RecordingLp pub, sub;
  cbPub.attach(pub);
  const auto h = cbPub.publishObjectClass(pub, "udp.timeout");
  cbSub.attach(sub);
  const auto sh = cbSub.subscribeObjectClass(sub, "udp.timeout");

  const auto tickBoth = [&](double untilSec, const auto& done) {
    while (wallClock() < untilSec) {
      cbPub.tick(wallClock());
      cbSub.tick(wallClock());
      if (done()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return done();
  };
  ASSERT_TRUE(tickBoth(wallClock() + 5.0, [&] { return cbSub.connected(sh); }));
  ASSERT_EQ(cbPub.channelCount(h), 1u);

  // The publisher hangs: only the subscriber keeps ticking. Past the
  // heartbeat timeout the channel must be gone and counted.
  {
    const double deadline = wallClock() + 5.0;
    while (wallClock() < deadline && cbSub.connected(sh)) {
      cbSub.tick(wallClock());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  EXPECT_FALSE(cbSub.connected(sh));
  EXPECT_GE(cbSub.stats().channelsTimedOut, 1u);

  // The publisher returns: the subscription's resumed broadcasts
  // re-handshake a fresh channel without any restart. The publisher may
  // briefly carry the stale channel alongside the new one (buffered
  // subscriber keep-alives refresh it on the first resumed tick), so wait
  // for it to ride out its own timeout too.
  ASSERT_TRUE(tickBoth(wallClock() + 5.0, [&] {
    return cbSub.connected(sh) && cbPub.channelCount(h) == 1;
  }));

  // Updates flow on the rebuilt channel.
  const std::size_t before = sub.values.size();
  AttributeSet a;
  a.set("v", 1.0);
  cbPub.updateAttributeValues(h, a, wallClock());
  ASSERT_TRUE(tickBoth(wallClock() + 5.0,
                       [&] { return sub.values.size() > before; }));
}

TEST(CbOverUdp, DynamicJoinOnLoopback) {
  const net::UdpConfig cfg = testConfig();
  CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.01;
  CommunicationBackbone cbPub(
      "udp-pub", std::make_unique<net::UdpTransport>(cfg, 2, 1), cbCfg);
  RecordingLp pub;
  cbPub.attach(pub);
  const auto h = cbPub.publishObjectClass(pub, "udp.join");

  // The publisher runs alone for a while (it keeps listening, §2.3).
  for (int i = 0; i < 20; ++i) {
    cbPub.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A subscriber joins late on another "host".
  CommunicationBackbone cbSub(
      "udp-sub", std::make_unique<net::UdpTransport>(cfg, 3, 1), cbCfg);
  RecordingLp sub;
  cbSub.attach(sub);
  const auto sh = cbSub.subscribeObjectClass(sub, "udp.join");
  const double deadline = wallClock() + 5.0;
  while (!cbSub.connected(sh) && wallClock() < deadline) {
    cbPub.tick(wallClock());
    cbSub.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cbSub.connected(sh));
  EXPECT_EQ(cbPub.channelCount(h), 1u);
}

}  // namespace
}  // namespace cod::core
