// The CB protocol over real UDP sockets (the deployment transport): the
// identical state machines that run on SimNetwork must converge on the
// loopback interface with wall-clock ticking.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/cb.hpp"
#include "net/udp.hpp"

namespace cod::core {
namespace {

net::UdpConfig testConfig() {
  net::UdpConfig cfg;
  cfg.basePort = 53200;  // distinct range from the raw UDP transport tests
  cfg.portsPerHost = 4;
  cfg.maxHosts = 4;
  return cfg;
}

double wallClock() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

class RecordingLp : public LogicalProcess {
 public:
  RecordingLp() : LogicalProcess("lp") {}
  std::vector<double> values;
  void reflectAttributeValues(const std::string&, const AttributeSet& a,
                              double) override {
    values.push_back(a.getDouble("v"));
  }
};

TEST(CbOverUdp, DiscoveryAndUpdatesOnLoopback) {
  const net::UdpConfig cfg = testConfig();
  CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.01;  // fast discovery for a quick test
  CommunicationBackbone cbA(
      "udp-a", std::make_unique<net::UdpTransport>(cfg, 0, 1), cbCfg);
  CommunicationBackbone cbB(
      "udp-b", std::make_unique<net::UdpTransport>(cfg, 1, 1), cbCfg);

  RecordingLp pub, sub;
  cbA.attach(pub);
  const auto h = cbA.publishObjectClass(pub, "udp.demo");
  cbB.attach(sub);
  const auto sh = cbB.subscribeObjectClass(sub, "udp.demo");

  // Tick both CBs with the wall clock until the channel is live.
  const double deadline = wallClock() + 5.0;
  while (!cbB.connected(sh) && wallClock() < deadline) {
    cbA.tick(wallClock());
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(cbB.connected(sh)) << "discovery did not converge over UDP";
  EXPECT_EQ(cbA.channelCount(h), 1u);

  // Updates flow end to end (loopback is reliable in practice, but allow
  // for scheduling: require at least most of them).
  for (int i = 0; i < 50; ++i) {
    AttributeSet a;
    a.set("v", static_cast<double>(i));
    cbA.updateAttributeValues(h, a, wallClock());
    cbA.tick(wallClock());
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const double drainDeadline = wallClock() + 1.0;
  while (sub.values.size() < 50 && wallClock() < drainDeadline) {
    cbB.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(sub.values.size(), 45u);
  // Sequence-number dedup guarantees strictly increasing delivery.
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);
}

TEST(CbOverUdp, DynamicJoinOnLoopback) {
  const net::UdpConfig cfg = testConfig();
  CommunicationBackbone::Config cbCfg;
  cbCfg.broadcastIntervalSec = 0.01;
  CommunicationBackbone cbPub(
      "udp-pub", std::make_unique<net::UdpTransport>(cfg, 2, 1), cbCfg);
  RecordingLp pub;
  cbPub.attach(pub);
  const auto h = cbPub.publishObjectClass(pub, "udp.join");

  // The publisher runs alone for a while (it keeps listening, §2.3).
  for (int i = 0; i < 20; ++i) {
    cbPub.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // A subscriber joins late on another "host".
  CommunicationBackbone cbSub(
      "udp-sub", std::make_unique<net::UdpTransport>(cfg, 3, 1), cbCfg);
  RecordingLp sub;
  cbSub.attach(sub);
  const auto sh = cbSub.subscribeObjectClass(sub, "udp.join");
  const double deadline = wallClock() + 5.0;
  while (!cbSub.connected(sh) && wallClock() < deadline) {
    cbPub.tick(wallClock());
    cbSub.tick(wallClock());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(cbSub.connected(sh));
  EXPECT_EQ(cbPub.channelCount(h), 1u);
}

}  // namespace
}  // namespace cod::core
