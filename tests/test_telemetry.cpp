// Telemetry subsystem suite: StatRegistry snapshots, TelemetryPublisher
// cadence/keyframes, HealthMonitor aggregation (staleness, alarms, rate
// derivation) on lossy 3-node SimNetwork clusters, the 4-node acceptance
// scenario, and the off-switch wire-identity guarantee.
//
// This binary carries the CTest "soak" label: the monitor suites hammer
// lossy links the same way the reliable-layer soaks do.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "net/simnet.hpp"
#include "sim/scenario_module.hpp"
#include "sim/simulator_app.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/publisher.hpp"
#include "telemetry/registry.hpp"

namespace cod::telemetry {
namespace {

core::AttributeSet sampleAttrs() {
  core::AttributeSet a;
  a.set("pos", math::Vec3{1.0, 2.0, 3.0});
  a.set("speed", 4.5);
  a.set("on", true);
  return a;
}

/// Publishes `cls` every `intervalSec` of virtual time.
class TrafficLp : public core::LogicalProcess {
 public:
  TrafficLp(std::string cls, double intervalSec)
      : core::LogicalProcess("traffic"), cls_(std::move(cls)),
        interval_(intervalSec) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, cls_);
  }

  void step(double now) override {
    if (now - last_ < interval_) return;
    backbone()->updateAttributeValues(pub_, sampleAttrs(), now);
    last_ = now;
  }

 private:
  std::string cls_;
  double interval_;
  double last_ = -1e300;
  core::PublicationHandle pub_ = core::kInvalidHandle;
};

/// Subscribes `cls` and counts reflections.
class SinkLp : public core::LogicalProcess {
 public:
  explicit SinkLp(std::string cls)
      : core::LogicalProcess("sink"), cls_(std::move(cls)) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    cb.subscribeObjectClass(*this, cls_);
  }

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet&, double) override {
    if (className == cls_) ++seen_;
  }

  std::uint64_t seen() const { return seen_; }

 private:
  std::string cls_;
  std::uint64_t seen_ = 0;
};

TEST(StatRegistry, SnapshotsCountersChannelsAndIdentity) {
  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("alpha");
  auto& cbB = cluster.addComputer("bravo");
  TrafficLp traffic("demo.state", 0.05);
  SinkLp sink("demo.state");
  traffic.bind(cbA);
  sink.bind(cbB);
  cluster.step(2.0);

  StatRegistry reg(cbA);
  const NodeTelemetry t1 = reg.snapshot(cluster.now());
  EXPECT_EQ(t1.seq, 1u);
  EXPECT_EQ(t1.node, "alpha");
  EXPECT_EQ(t1.addr, cbA.address());
  EXPECT_EQ(t1.nodeTimeSec, cluster.now());
  EXPECT_EQ(t1.cb.updatesSent, cbA.stats().updatesSent);
  EXPECT_GT(t1.cb.updatesSent, 0u);
  ASSERT_NE(cbA.transportStats(), nullptr);
  EXPECT_EQ(t1.transport.packetsSent, cbA.transportStats()->packetsSent);
  EXPECT_GT(t1.transport.packetsSent, 0u);
  // One outbound channel, carrying the traffic class.
  ASSERT_EQ(t1.channels.size(), 1u);
  EXPECT_TRUE(t1.channels[0].outbound);
  EXPECT_EQ(t1.channels[0].className, "demo.state");
  EXPECT_TRUE(t1.channels[0].live);
  EXPECT_LT(t1.channels[0].ageSec, 1.0);

  const NodeTelemetry t2 = reg.snapshot(cluster.now());
  EXPECT_EQ(t2.seq, 2u);  // monotonic

  // The subscriber side reports the same channel inbound.
  StatRegistry regB(cbB);
  const NodeTelemetry tb = regB.snapshot(cluster.now());
  ASSERT_EQ(tb.channels.size(), 1u);
  EXPECT_FALSE(tb.channels[0].outbound);
  EXPECT_EQ(tb.channels[0].className, "demo.state");
  EXPECT_TRUE(tb.channels[0].live);
}

TEST(TelemetryPublisher, CadenceAndKeyframeSchedule) {
  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("alpha");
  auto& cbB = cluster.addComputer("bravo");
  TelemetryConfig cfg;
  cfg.intervalSec = 0.5;
  cfg.keyframeInterval = 3;
  TelemetryPublisher pub(cfg);
  pub.bind(cbA);
  HealthMonitor monitor;
  monitor.bind(cbB);
  cluster.step(10.0);

  // ~20 snapshots at 0.5 s cadence, every third a keyframe.
  EXPECT_GE(pub.snapshotsPublished(), 18u);
  EXPECT_LE(pub.snapshotsPublished(), 22u);
  EXPECT_GE(pub.keyframesPublished(), pub.snapshotsPublished() / 3);
  EXPECT_LT(pub.keyframesPublished(), pub.snapshotsPublished());

  const NodeHealth* h = monitor.node("alpha");
  ASSERT_NE(h, nullptr);
  // A clean LAN: everything applies except the first snapshot, published
  // before discovery wired the channel (the publisher then re-keyframes
  // for the new subscriber, so no deltas are orphaned).
  EXPECT_GE(h->snapshotsApplied, pub.snapshotsPublished() - 2);
  EXPECT_LE(h->deltasRejected, 1u);
  EXPECT_FALSE(h->silent);
  EXPECT_EQ(h->last.seq, pub.snapshotsPublished());
  EXPECT_TRUE(monitor.alarms().empty());
}

/// A subscriber *swap* between publishes (one monitor leaves, another
/// joins; net fan-out unchanged) must still force a keyframe — otherwise
/// the newcomer rejects deltas until the schedule's next keyframe.
TEST(TelemetryPublisher, SubscriberSwapForcesKeyframe) {
  net::SimNetwork net(7);
  const net::HostId hA = net.addHost("A");
  const net::HostId hB = net.addHost("B");
  const net::HostId hC = net.addHost("C");
  core::CommunicationBackbone cbA("alpha", net.bind(hA, 1));
  TelemetryConfig tcfg;
  tcfg.intervalSec = 5.0;
  tcfg.keyframeInterval = 100;  // the schedule will not save the newcomer
  TelemetryPublisher pub(tcfg);
  pub.bind(cbA);
  std::optional<core::CommunicationBackbone> cbB;
  cbB.emplace("bravo", net.bind(hB, 1));
  std::optional<HealthMonitor> monB;
  monB.emplace();
  monB->bind(*cbB);
  std::optional<core::CommunicationBackbone> cbC;
  std::optional<HealthMonitor> monC;

  double t = 0.0;
  const auto run = [&](double until) {
    while (t < until) {
      t += 0.005;
      net.advance(0.005);
      cbA.tick(net.now());
      if (cbB) cbB->tick(net.now());
      if (cbC) cbC->tick(net.now());
    }
  };
  // Publish #1 lands before discovery, #2 (t≈5) re-keyframes for bravo.
  run(7.0);
  ASSERT_NE(monB->node("alpha"), nullptr);
  ASSERT_GE(monB->node("alpha")->snapshotsApplied, 1u);
  // The swap, entirely inside one publish interval: charlie joins...
  cbC.emplace("charlie", net.bind(hC, 1));
  monC.emplace();
  monC->bind(*cbC);
  run(8.5);
  // ...and bravo resigns cleanly (BYE), restoring the old fan-out of 1.
  monB.reset();
  cbB.reset();
  run(9.5);
  // Publish #3 (t≈10): same net fan-out, but the established-channel
  // counter grew — the publisher must emit a keyframe charlie can use.
  run(12.0);
  const NodeHealth* h = monC->node("alpha");
  ASSERT_NE(h, nullptr);
  EXPECT_GE(h->snapshotsApplied, 1u);
  EXPECT_EQ(h->last.seq, pub.snapshotsPublished());
}

TEST(TelemetryPublisher, DisabledBindIsInert) {
  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("alpha");
  TelemetryConfig off;
  off.enabled = false;
  TelemetryPublisher pub(off);
  pub.bind(cbA);
  EXPECT_EQ(cbA.lpCount(), 0u);  // never even attached
  cluster.step(3.0);
  EXPECT_EQ(pub.snapshotsPublished(), 0u);
}

TEST(HealthMonitor, DerivesRatesOnBusyCluster) {
  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("alpha");
  auto& cbB = cluster.addComputer("bravo");
  auto& cbC = cluster.addComputer("charlie");
  TrafficLp traffic("demo.state", 1.0 / 16.0);
  SinkLp sink("demo.state");
  traffic.bind(cbA);
  sink.bind(cbB);
  TelemetryConfig tcfg;
  tcfg.intervalSec = 0.5;
  std::vector<std::unique_ptr<TelemetryPublisher>> pubs;
  for (auto* cb : {&cbA, &cbB, &cbC}) {
    pubs.push_back(std::make_unique<TelemetryPublisher>(tcfg));
    pubs.back()->bind(*cb);
  }
  MonitorConfig mcfg;
  mcfg.expectedIntervalSec = tcfg.intervalSec;
  HealthMonitor monitor(mcfg);
  monitor.bind(cbC);
  cluster.step(8.0);

  ASSERT_EQ(monitor.nodeCount(), 3u);
  const NodeHealth* a = monitor.node("alpha");
  ASSERT_NE(a, nullptr);
  // 16 updates/s of demo.state plus 2/s of telemetry.
  EXPECT_GT(a->updatesPerSec, 10.0);
  EXPECT_LT(a->updatesPerSec, 30.0);
  EXPECT_GT(a->bytesPerDatagram, 0.0);
  EXPECT_NEAR(a->lossPct, 0.0, 1e-9);
  // charlie watches itself through the local fast path.
  const NodeHealth* c = monitor.node("charlie");
  ASSERT_NE(c, nullptr);
  EXPECT_GT(c->snapshotsApplied, 0u);
}

/// Feed the monitor crafted records directly (no network): deterministic
/// coverage of alarm edges, stale sequences and publisher restarts.
class MonitorUnit : public ::testing::Test {
 protected:
  static core::AttributeSet wrap(const std::vector<std::uint8_t>& bytes) {
    core::AttributeSet a;
    a.set(kTelemetryAttr, bytes);
    return a;
  }

  NodeTelemetry record(std::uint64_t seq, double timeSec) {
    NodeTelemetry t;
    t.seq = seq;
    t.node = "unit";
    t.addr = {1, 1};
    t.nodeTimeSec = timeSec;
    return t;
  }

  void feed(const NodeTelemetry& t) {
    monitor.reflectAttributeValues(kTelemetryClass, wrap(encodeTelemetry(t)),
                                   t.nodeTimeSec);
  }

  HealthMonitor monitor;
};

TEST_F(MonitorUnit, ThresholdAlarmsAreEdgeTriggered) {
  NodeTelemetry t1 = record(1, 0.0);
  feed(t1);
  EXPECT_TRUE(monitor.alarms().empty());

  // One second later: a retransmit storm and mailbox overflows. The
  // retransmits ride on plenty of first-attempt traffic, so the derived
  // reliable-loss estimate stays below its own (separate) alarm.
  NodeTelemetry t2 = record(2, 1.0);
  t2.cb.reliable.retransmitsSent = 500;
  t2.cb.reliable.dataFramesSent = 10000;
  t2.cb.mailboxOverflows = 3;
  feed(t2);
  ASSERT_EQ(monitor.alarms().size(), 2u);
  EXPECT_EQ(monitor.alarms()[0].kind, HealthAlarm::Kind::kRetransmitStorm);
  EXPECT_EQ(monitor.alarms()[1].kind, HealthAlarm::Kind::kMailboxOverflow);
  EXPECT_EQ(monitor.alarms()[0].node, "unit");
  EXPECT_EQ(monitor.alarms()[0].severity, HealthAlarm::Severity::kWarning);
  EXPECT_EQ(monitor.alarms()[1].severity, HealthAlarm::Severity::kWarning);

  // The storm persists: no new storm alarm (edge, not level). Overflow is
  // interval growth, and this interval grew by nothing — its falling edge
  // lands here.
  NodeTelemetry t3 = record(3, 2.0);
  t3.cb.reliable.retransmitsSent = 1000;
  t3.cb.reliable.dataFramesSent = 20000;
  t3.cb.mailboxOverflows = 3;
  feed(t3);
  ASSERT_EQ(monitor.alarms().size(), 3u);
  EXPECT_EQ(monitor.alarms()[2].kind, HealthAlarm::Kind::kOverflowCleared);
  EXPECT_EQ(monitor.alarms()[2].severity, HealthAlarm::Severity::kInfo);

  // It subsides (falling edge), then returns: a fresh alarm.
  NodeTelemetry t4 = record(4, 3.0);
  t4.cb.reliable.retransmitsSent = 1000;
  t4.cb.reliable.dataFramesSent = 20000;
  t4.cb.mailboxOverflows = 3;
  feed(t4);
  ASSERT_EQ(monitor.alarms().size(), 4u);
  EXPECT_EQ(monitor.alarms()[3].kind, HealthAlarm::Kind::kRetransmitCleared);
  EXPECT_EQ(monitor.alarms()[3].severity, HealthAlarm::Severity::kInfo);
  NodeTelemetry t5 = record(5, 4.0);
  t5.cb.reliable.retransmitsSent = 1500;
  t5.cb.reliable.dataFramesSent = 30000;
  t5.cb.mailboxOverflows = 3;
  feed(t5);
  ASSERT_EQ(monitor.alarms().size(), 5u);
  EXPECT_EQ(monitor.alarms()[4].kind, HealthAlarm::Kind::kRetransmitStorm);
}

TEST_F(MonitorUnit, LossClearPairsWithItsSpike) {
  NodeTelemetry t1 = record(1, 0.0);
  t1.transport.framesReceived = 1000;
  feed(t1);
  NodeTelemetry t2 = record(2, 1.0);
  t2.transport.framesReceived = 1070;
  t2.transport.framesDropped = 30;  // 30% → spike
  feed(t2);
  NodeTelemetry t3 = record(3, 2.0);
  t3.transport.framesReceived = 1170;  // clean interval
  t3.transport.framesDropped = 30;
  feed(t3);
  ASSERT_EQ(monitor.alarms().size(), 2u);
  EXPECT_EQ(monitor.alarms()[0].kind, HealthAlarm::Kind::kLossSpike);
  EXPECT_EQ(monitor.alarms()[1].kind, HealthAlarm::Kind::kLossCleared);
  EXPECT_EQ(monitor.alarms()[1].severity, HealthAlarm::Severity::kInfo);
  EXPECT_EQ(monitor.alarms()[1].node, "unit");
  // The rendered feed carries the severity column.
  const std::string rendered = monitor.renderAlarms();
  EXPECT_NE(rendered.find("WARN"), std::string::npos);
  EXPECT_NE(rendered.find("INFO"), std::string::npos);
  EXPECT_NE(rendered.find("LOSS_CLEARED"), std::string::npos);
}

TEST_F(MonitorUnit, ChannelWindowPinnedAndRetransmitStormAlarms) {
  auto chan = [](std::uint32_t id, std::uint64_t window, std::uint64_t retx) {
    core::CbChannelHealth c;
    c.channelId = id;
    c.className = "crane.state";
    c.outbound = true;
    c.live = true;
    c.qos = net::QosClass::kReliableOrdered;
    c.windowFrames = window;
    c.retransmits = retx;
    return c;
  };
  // t1 → t2: the window is pinned at the cap, but one pinned snapshot is
  // just bursty load — no alarm until it holds across two. The channel
  // retransmit storm (100/s ≥ 20/s default) fires right away.
  NodeTelemetry t1 = record(1, 0.0);
  t1.channels.push_back(chan(7, 512, 0));
  feed(t1);
  NodeTelemetry t2 = record(2, 1.0);
  t2.channels.push_back(chan(7, 512, 100));
  feed(t2);
  ASSERT_EQ(monitor.alarms().size(), 1u);
  EXPECT_EQ(monitor.alarms()[0].kind,
            HealthAlarm::Kind::kChannelRetransmitStorm);
  EXPECT_EQ(monitor.alarms()[0].severity, HealthAlarm::Severity::kWarning);
  EXPECT_NE(monitor.alarms()[0].detail.find("crane.state"), std::string::npos);

  // t3: still pinned — second consecutive snapshot raises the critical
  // window alarm; the storm persists without a fresh edge.
  NodeTelemetry t3 = record(3, 2.0);
  t3.channels.push_back(chan(7, 512, 200));
  feed(t3);
  ASSERT_EQ(monitor.alarms().size(), 2u);
  EXPECT_EQ(monitor.alarms()[1].kind, HealthAlarm::Kind::kChannelWindowPinned);
  EXPECT_EQ(monitor.alarms()[1].severity, HealthAlarm::Severity::kCritical);

  // t4: the subscriber acks (window drains) and retransmits stop — both
  // conditions clear with paired INFO edges.
  NodeTelemetry t4 = record(4, 3.0);
  t4.channels.push_back(chan(7, 3, 205));
  feed(t4);
  ASSERT_EQ(monitor.alarms().size(), 4u);
  EXPECT_EQ(monitor.alarms()[2].kind, HealthAlarm::Kind::kChannelWindowCleared);
  EXPECT_EQ(monitor.alarms()[3].kind,
            HealthAlarm::Kind::kChannelRetransmitCleared);
  EXPECT_EQ(monitor.alarms()[2].severity, HealthAlarm::Severity::kInfo);

  // t5: the channel vanishes (teardown) — its edge state goes with it, so
  // a reappearing pinned channel must again hold two snapshots.
  NodeTelemetry t5 = record(5, 4.0);
  feed(t5);
  NodeTelemetry t6 = record(6, 5.0);
  t6.channels.push_back(chan(7, 512, 205));
  feed(t6);
  NodeTelemetry t7 = record(7, 6.0);
  t7.channels.push_back(chan(7, 512, 205));
  feed(t7);
  ASSERT_EQ(monitor.alarms().size(), 5u);
  EXPECT_EQ(monitor.alarms()[4].kind, HealthAlarm::Kind::kChannelWindowPinned);
}

TEST_F(MonitorUnit, LossSpikeFromTransportFrameCounters) {
  NodeTelemetry t1 = record(1, 0.0);
  t1.transport.framesReceived = 1000;
  feed(t1);
  NodeTelemetry t2 = record(2, 1.0);
  t2.transport.framesReceived = 1070;   // +70
  t2.transport.framesDropped = 30;      // +30 → 30% inbound loss
  feed(t2);
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_NEAR(h->lossPct, 30.0, 0.01);
  ASSERT_EQ(monitor.alarms().size(), 1u);
  EXPECT_EQ(monitor.alarms()[0].kind, HealthAlarm::Kind::kLossSpike);
  EXPECT_EQ(monitor.peakLossPct(), h->lossPct);
  EXPECT_EQ(monitor.peakLossNode(), "unit");
}

TEST_F(MonitorUnit, ReliableCounterLossEstimateOnRealSockets) {
  // Real sockets cannot attribute drops: framesDropped stays 0 no matter
  // what the network eats, so frame accounting reads 0% loss. The
  // reliable-layer estimate (retx / (data + retx)) must carry the alarm
  // and the peak-loss annotation instead.
  EXPECT_NEAR(reliableLossEstimatePct(750, 250), 25.0, 1e-9);
  EXPECT_EQ(reliableLossEstimatePct(0, 0), 0.0);

  NodeTelemetry t1 = record(1, 0.0);
  t1.transport.framesReceived = 1000;  // frame accounting sees traffic...
  t1.cb.reliable.dataFramesSent = 1000;
  t1.cb.reliable.retransmitsSent = 10;
  feed(t1);
  NodeTelemetry t2 = record(2, 1.0);
  t2.transport.framesReceived = 2000;  // ...but never a drop
  t2.cb.reliable.dataFramesSent = 1750;   // +750
  t2.cb.reliable.retransmitsSent = 260;   // +250 → 25% estimated loss
  feed(t2);
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_NEAR(h->lossPct, 0.0, 1e-9);
  EXPECT_NEAR(h->reliableLossPct, 25.0, 0.01);
  EXPECT_NEAR(h->effectiveLossPct(), 25.0, 0.01);
  ASSERT_FALSE(monitor.alarms().empty());
  EXPECT_EQ(monitor.alarms()[0].kind, HealthAlarm::Kind::kLossSpike);
  EXPECT_NEAR(monitor.peakLossPct(), 25.0, 0.01);
  EXPECT_EQ(monitor.peakLossNode(), "unit");
}

TEST_F(MonitorUnit, StaleAndRestartSequences) {
  feed(record(5, 1.0));
  feed(record(6, 2.0));
  // Reordered near-duplicate: dropped, not applied and not a "restart"
  // (the gap is within plausible reordering).
  feed(record(5, 1.0));
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->staleDropped, 1u);
  EXPECT_EQ(h->last.seq, 6u);
  // Publisher restart: sequence 1 resets the node's history.
  feed(record(1, 0.5));
  h = monitor.node("unit");
  EXPECT_EQ(h->last.seq, 1u);
  EXPECT_EQ(h->snapshotsApplied, 1u);
}

TEST_F(MonitorUnit, RestartDetectedEvenWhenFirstKeyframeWasLost) {
  // A long-lived publisher...
  feed(record(1800, 1800.0));
  // ...restarts, and its literal seq-1 keyframe is lost (best-effort
  // channel). The first keyframe that does arrive is far behind the old
  // sequence: that is a restart, not reordering — the health row must
  // not stay frozen on dead-process counters for 1800 intervals.
  NodeTelemetry t = record(4, 3.0);
  t.cb.updatesSent = 7;
  feed(t);
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->last.seq, 4u);
  EXPECT_EQ(h->last.cb.updatesSent, 7u);
  EXPECT_EQ(h->snapshotsApplied, 1u);  // history reset
}

TEST_F(MonitorUnit, BackwardsNodeClockWithAdvancingSeqResetsHistory) {
  NodeTelemetry t1 = record(10, 100.0);
  t1.cb.updatesSent = 5000;
  feed(t1);
  NodeTelemetry t2 = record(11, 101.0);
  t2.cb.updatesSent = 6000;
  feed(t2);
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_NEAR(h->updatesPerSec, 1000.0, 1.0);
  // A restart whose seq-reset keyframe was lost can surface as a snapshot
  // whose sequence still advances while the publisher clock went
  // backwards. Rates derived across that pair would divide two different
  // processes' counters by a non-positive dt (the old bug: two
  // independently computed wall-clock deltas let this through as a
  // negative rate). The monitor must treat it as a missed restart.
  NodeTelemetry t3 = record(12, 2.0);
  t3.cb.updatesSent = 50;
  feed(t3);
  h = monitor.node("unit");
  EXPECT_EQ(h->last.seq, 12u);
  EXPECT_EQ(h->last.cb.updatesSent, 50u);
  EXPECT_EQ(h->snapshotsApplied, 1u);  // history reset
  EXPECT_EQ(h->updatesPerSec, 0.0);    // not negative, not garbage
  // Rates resume cleanly from the new process's baseline.
  NodeTelemetry t4 = record(13, 3.0);
  t4.cb.updatesSent = 150;
  feed(t4);
  h = monitor.node("unit");
  EXPECT_NEAR(h->updatesPerSec, 100.0, 1.0);
  EXPECT_GE(h->updatesPerSec, 0.0);
}

TEST_F(MonitorUnit, LatencySpikeAlarmFromHistogramDeltas) {
  constexpr std::size_t kLat = CbHistograms::kDeliveryLatencyIdx;
  const double lowest = CbHistograms::lowestOf(kLat);
  // Cumulative latency histogram with `fast` samples near 5 ms and `slow`
  // samples near 400 ms (default spike threshold is p99 >= 250 ms).
  const auto hist = [&](std::uint64_t fast, std::uint64_t slow) {
    HistogramSnapshot s;
    s.count = fast + slow;
    s.sum = 0.005 * static_cast<double>(fast) + 0.4 * static_cast<double>(slow);
    s.min = fast > 0 ? 0.005 : 0.4;
    s.max = slow > 0 ? 0.4 : 0.005;
    s.buckets[LogHistogram::bucketOf(0.005, lowest)] += fast;
    s.buckets[LogHistogram::bucketOf(0.4, lowest)] += slow;
    return s;
  };

  NodeTelemetry t1 = record(1, 0.0);
  feed(t1);
  // Interval of 5 slow samples: p99 is over threshold but below the
  // 10-sample floor — sparse sampling must not alarm on a handful.
  NodeTelemetry t2 = record(2, 1.0);
  t2.hists[kLat] = hist(0, 5);
  feed(t2);
  EXPECT_TRUE(monitor.alarms().empty());
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->latencySamples, 5u);
  EXPECT_GT(h->latencyP99Ms, 250.0);

  // Interval of 20 more slow samples: now judged, and it spikes.
  NodeTelemetry t3 = record(3, 2.0);
  t3.hists[kLat] = hist(0, 25);
  feed(t3);
  ASSERT_EQ(monitor.alarms().size(), 1u);
  EXPECT_EQ(monitor.alarms()[0].kind, HealthAlarm::Kind::kLatencySpike);
  EXPECT_EQ(monitor.alarms()[0].severity, HealthAlarm::Severity::kWarning);
  EXPECT_NE(monitor.alarms()[0].detail.find("p99"), std::string::npos);

  // The spike persists: edge-triggered, no second alarm.
  NodeTelemetry t4 = record(4, 3.0);
  t4.hists[kLat] = hist(0, 45);
  feed(t4);
  ASSERT_EQ(monitor.alarms().size(), 1u);

  // An empty interval must not clear the alarm (not judged either way)...
  NodeTelemetry t5 = record(5, 4.0);
  t5.hists[kLat] = hist(0, 45);
  feed(t5);
  ASSERT_EQ(monitor.alarms().size(), 1u);

  // ...but a healthy interval of fast samples does, with the paired edge.
  NodeTelemetry t6 = record(6, 5.0);
  t6.hists[kLat] = hist(30, 45);
  feed(t6);
  ASSERT_EQ(monitor.alarms().size(), 2u);
  EXPECT_EQ(monitor.alarms()[1].kind, HealthAlarm::Kind::kLatencyCleared);
  EXPECT_EQ(monitor.alarms()[1].severity, HealthAlarm::Severity::kInfo);
  h = monitor.node("unit");
  EXPECT_LT(h->latencyP99Ms, 250.0);
  EXPECT_EQ(h->latencySamples, 30u);
  // The health table renders the latency column.
  const std::string table = monitor.renderTable();
  EXPECT_NE(table.find("p99ms"), std::string::npos);
}

TEST_F(MonitorUnit, ShardBalanceLineRendersFromShardLoad) {
  NodeTelemetry t1 = record(1, 0.0);
  t1.shardLoad.push_back(core::CbShardLoad{8, 2, 3, 1});   // 14 entries
  t1.shardLoad.push_back(core::CbShardLoad{1, 1, 0, 0});   // 2 entries
  feed(t1);
  const std::string table = monitor.renderTable();
  EXPECT_NE(table.find("shards"), std::string::npos);
  EXPECT_NE(table.find("n=2"), std::string::npos);
  // Peak/mean of (14, 2) entry totals = 14/8 = 1.75.
  EXPECT_NE(table.find("1.75"), std::string::npos);
  // A single-shard node renders no balance line ("zz-solo" sorts after
  // "unit", so any "shards" text past its row would be its own).
  NodeTelemetry u1 = record(1, 0.0);
  u1.node = "zz-solo";
  u1.addr = {2, 1};
  u1.shardLoad.push_back(core::CbShardLoad{4, 4, 4, 4});
  monitor.reflectAttributeValues(kTelemetryClass, wrap(encodeTelemetry(u1)),
                                 0.0);
  const std::string t2 = monitor.renderTable();
  EXPECT_EQ(t2.find("shards", t2.find("zz-solo")), std::string::npos);
}

TEST_F(MonitorUnit, SilentNodeRestartingStillEmitsRecovered) {
  feed(record(5, 0.0));
  monitor.step(10.0);  // default 3×1 s staleness: node goes silent
  ASSERT_EQ(monitor.alarms().size(), 1u);
  EXPECT_EQ(monitor.alarms()[0].kind, HealthAlarm::Kind::kNodeSilent);
  // The node comes back as a *new process* (restart reset): the feed must
  // still pair the SILENT edge with a RECOVERED edge.
  feed(record(1, 10.5));
  ASSERT_EQ(monitor.alarms().size(), 2u);
  EXPECT_EQ(monitor.alarms()[1].kind, HealthAlarm::Kind::kNodeRecovered);
  EXPECT_FALSE(monitor.node("unit")->silent);
}

TEST_F(MonitorUnit, GarbageAndNonBlobRecordsCounted) {
  core::AttributeSet notBlob;
  notBlob.set(kTelemetryAttr, 3.25);
  monitor.reflectAttributeValues(kTelemetryClass, notBlob, 0.0);
  monitor.reflectAttributeValues(kTelemetryClass,
                                 wrap({0xDE, 0xAD, 0xBE, 0xEF}), 0.0);
  EXPECT_EQ(monitor.undecodableDropped(), 2u);
  EXPECT_EQ(monitor.nodeCount(), 0u);
}

TEST_F(MonitorUnit, CorruptDeltaWithHeldBaseCountsAsCorruption) {
  NodeTelemetry base = record(1, 0.0);
  feed(base);
  NodeTelemetry next = record(2, 1.0);
  next.cb.updatesSent = 42;
  auto bytes = encodeTelemetryDelta(next, base);
  bytes.pop_back();  // header intact, base held — but the body is mangled
  monitor.reflectAttributeValues(kTelemetryClass, wrap(bytes), 1.0);
  // Corruption, not "lost their keyframe": the operator-facing counters
  // must not point diagnosis at packet loss.
  EXPECT_EQ(monitor.undecodableDropped(), 1u);
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->deltasRejected, 0u);
  EXPECT_EQ(h->last.seq, 1u);
}

TEST_F(MonitorUnit, DeltaWithLostKeyframeRefreshesLivenessOnly) {
  NodeTelemetry base = record(1, 0.0);
  base.cb.updatesSent = 10;
  feed(base);
  // The keyframe for seq 2 was "lost": a delta against it cannot apply.
  NodeTelemetry missedKeyframe = record(2, 1.0);
  missedKeyframe.cb.updatesSent = 20;
  NodeTelemetry delta = record(3, 2.0);
  delta.cb.updatesSent = 30;
  monitor.reflectAttributeValues(
      kTelemetryClass, wrap(encodeTelemetryDelta(delta, missedKeyframe)), 2.0);
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->deltasRejected, 1u);
  EXPECT_EQ(h->last.cb.updatesSent, 10u);  // not guessed
  // A delta against the keyframe we *do* hold applies.
  NodeTelemetry delta2 = record(4, 3.0);
  delta2.cb.updatesSent = 40;
  monitor.reflectAttributeValues(kTelemetryClass,
                                 wrap(encodeTelemetryDelta(delta2, base)), 3.0);
  h = monitor.node("unit");
  EXPECT_EQ(h->last.cb.updatesSent, 40u);
  EXPECT_EQ(h->last.seq, 4u);
}

/// Staleness and alarms on a lossy 3-node SimNetwork — the ISSUE's soak
/// suite. 25 % loss on every link; one node is then silenced outright and
/// must be flagged, and must recover after the partition heals.
TEST(HealthMonitorSoak, SilentNodeFlaggedAndRecoveredUnderLoss) {
  core::CodCluster::Config ccfg;
  ccfg.link.lossRate = 0.25;
  ccfg.seed = 11;
  core::CodCluster cluster(ccfg);
  auto& cbA = cluster.addComputer("alpha");
  auto& cbB = cluster.addComputer("bravo");
  auto& cbC = cluster.addComputer("charlie");
  TrafficLp traffic("demo.state", 1.0 / 16.0);
  SinkLp sink("demo.state");
  traffic.bind(cbB);
  sink.bind(cbC);
  TelemetryConfig tcfg;
  tcfg.intervalSec = 0.25;
  tcfg.keyframeInterval = 4;
  std::vector<std::unique_ptr<TelemetryPublisher>> pubs;
  for (auto* cb : {&cbA, &cbB, &cbC}) {
    pubs.push_back(std::make_unique<TelemetryPublisher>(tcfg));
    pubs.back()->bind(*cb);
  }
  MonitorConfig mcfg;
  mcfg.expectedIntervalSec = tcfg.intervalSec;
  mcfg.silentAfterIntervals = 6.0;  // loss-tolerant staleness threshold
  HealthMonitor monitor(mcfg);
  monitor.bind(cbA);

  cluster.step(10.0);
  // Despite 25 % loss the monitor tracks all three nodes live.
  ASSERT_EQ(monitor.nodeCount(), 3u);
  for (const std::string& name : monitor.nodeNames()) {
    const NodeHealth* h = monitor.node(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GT(h->snapshotsApplied, 5u) << name;
    EXPECT_FALSE(h->silent) << name;
  }
  const std::size_t alarmsBefore = monitor.alarms().size();

  // Silence bravo entirely (partition from both peers).
  net::SimNetwork& net = cluster.network();
  net.setPartitioned(0, 1, true);
  net.setPartitioned(1, 2, true);
  cluster.step(6.0);
  {
    const NodeHealth* b = monitor.node("bravo");
    ASSERT_NE(b, nullptr);
    EXPECT_TRUE(b->silent);
    bool flagged = false;
    for (std::size_t i = alarmsBefore; i < monitor.alarms().size(); ++i) {
      const HealthAlarm& a = monitor.alarms()[i];
      if (a.kind == HealthAlarm::Kind::kNodeSilent && a.node == "bravo")
        flagged = true;
    }
    EXPECT_TRUE(flagged);
  }

  // Heal: rediscovery re-opens the telemetry channel and bravo recovers.
  net.setPartitioned(0, 1, false);
  net.setPartitioned(1, 2, false);
  cluster.step(8.0);
  {
    const NodeHealth* b = monitor.node("bravo");
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->silent);
    bool recovered = false;
    for (const HealthAlarm& a : monitor.alarms())
      if (a.kind == HealthAlarm::Kind::kNodeRecovered && a.node == "bravo")
        recovered = true;
    EXPECT_TRUE(recovered);
  }
}

/// ISSUE acceptance: a HealthMonitor on one node of a 4-node SimNetwork
/// cluster observes every peer's CbStats/TransportStats live, flags a
/// loss spike and a silenced node via alarms.
TEST(HealthMonitorSoak, FourNodeClusterAcceptance) {
  core::CodCluster::Config ccfg;
  ccfg.seed = 23;
  core::CodCluster cluster(ccfg);
  auto& cb0 = cluster.addComputer("n0");
  auto& cb1 = cluster.addComputer("n1");
  auto& cb2 = cluster.addComputer("n2");
  auto& cb3 = cluster.addComputer("n3");
  // Busy mesh: n1 streams state consumed on n2 and n3; n2 streams to n0.
  TrafficLp t1("mesh.a", 1.0 / 16.0), t2("mesh.b", 1.0 / 8.0);
  SinkLp s2("mesh.a"), s3("mesh.a"), s0("mesh.b");
  t1.bind(cb1);
  t2.bind(cb2);
  s2.bind(cb2);
  s3.bind(cb3);
  s0.bind(cb0);
  TelemetryConfig tcfg;
  tcfg.intervalSec = 0.25;
  std::vector<std::unique_ptr<TelemetryPublisher>> pubs;
  for (auto* cb : {&cb0, &cb1, &cb2, &cb3}) {
    pubs.push_back(std::make_unique<TelemetryPublisher>(tcfg));
    pubs.back()->bind(*cb);
  }
  MonitorConfig mcfg;
  mcfg.expectedIntervalSec = tcfg.intervalSec;
  mcfg.silentAfterIntervals = 6.0;
  mcfg.lossSpikePct = 10.0;
  HealthMonitor monitor(mcfg);
  monitor.bind(cb0);

  // Phase 1 — clean run: every peer's stats are observed live.
  cluster.step(5.0);
  ASSERT_EQ(monitor.nodeCount(), 4u);
  for (const std::string name : {"n0", "n1", "n2", "n3"}) {
    const NodeHealth* h = monitor.node(name);
    ASSERT_NE(h, nullptr) << name;
    EXPECT_GE(h->snapshotsApplied, 10u) << name;
    EXPECT_GT(h->last.transport.packetsSent, 0u) << name;
    // Every node moves updates: over channels or (n0, whose only
    // subscriber is the monitor beside it) the local fast path.
    EXPECT_GT(h->last.cb.updatesSent + h->last.cb.updatesLocalFastPath, 0u)
        << name;
    EXPECT_FALSE(h->silent) << name;
  }
  EXPECT_GT(monitor.node("n1")->updatesPerSec, 10.0);
  EXPECT_TRUE(monitor.alarms().empty());

  // Phase 2 — a loss spike towards n3: flagged by the threshold alarm.
  net::SimNetwork& net = cluster.network();
  net::LinkModel lossy = net.defaultLink();
  lossy.lossRate = 0.4;
  net.setLink(1, 3, lossy);
  cluster.step(5.0);
  {
    bool spiked = false;
    for (const HealthAlarm& a : monitor.alarms())
      if (a.kind == HealthAlarm::Kind::kLossSpike && a.node == "n3")
        spiked = true;
    EXPECT_TRUE(spiked);
    EXPECT_GE(monitor.peakLossPct(), 10.0);
  }

  // Phase 3 — n2 goes dark: the silent alarm names it.
  for (net::HostId other : {0u, 1u, 3u}) net.setPartitioned(2, other, true);
  cluster.step(6.0);
  {
    const NodeHealth* h = monitor.node("n2");
    ASSERT_NE(h, nullptr);
    EXPECT_TRUE(h->silent);
    bool flagged = false;
    for (const HealthAlarm& a : monitor.alarms())
      if (a.kind == HealthAlarm::Kind::kNodeSilent && a.node == "n2")
        flagged = true;
    EXPECT_TRUE(flagged);
  }
}

/// A co-located HealthMonitor feeds the exam debrief: alarms become
/// annotations, and the peak-loss note lands when the exam finishes.
TEST(ScenarioAnnotations, ClusterAlarmsEnterTheDebriefStream) {
  sim::ScenarioModule scenario(scenario::Course{});
  HealthMonitor monitor;
  scenario.attachClusterMonitor(&monitor);

  // Craft a loss spike through the monitor's public reflection interface.
  NodeTelemetry t1;
  t1.seq = 1;
  t1.node = "display-1";
  t1.nodeTimeSec = 0.0;
  t1.transport.framesReceived = 100;
  core::AttributeSet a1;
  a1.set(kTelemetryAttr, encodeTelemetry(t1));
  monitor.reflectAttributeValues(kTelemetryClass, a1, 0.0);
  NodeTelemetry t2 = t1;
  t2.seq = 2;
  t2.nodeTimeSec = 1.0;
  t2.transport.framesReceived = 170;
  t2.transport.framesDropped = 30;
  core::AttributeSet a2;
  a2.set(kTelemetryAttr, encodeTelemetry(t2));
  monitor.reflectAttributeValues(kTelemetryClass, a2, 1.0);
  ASSERT_EQ(monitor.alarms().size(), 1u);

  const std::uint64_t revBefore = scenario.exam().revision();
  scenario.step(1.5);
  const auto& annotations = scenario.exam().score().annotations;
  ASSERT_EQ(annotations.size(), 1u);
  EXPECT_NE(annotations[0].note.find("LOSS_SPIKE"), std::string::npos);
  EXPECT_NE(annotations[0].note.find("display-1"), std::string::npos);
  // Annotations ride the revision counter into the reliable status stream.
  EXPECT_GT(scenario.exam().revision(), revBefore);
  // Re-stepping must not duplicate the alarm.
  scenario.step(1.6);
  EXPECT_EQ(scenario.exam().score().annotations.size(), 1u);
}

// ---- the off-switch wire guarantee --------------------------------------

/// Transport decorator that journals every outbound datagram.
class TapTransport final : public net::Transport {
 public:
  TapTransport(std::unique_ptr<net::Transport> inner,
               std::vector<std::vector<std::uint8_t>>* log)
      : inner_(std::move(inner)), log_(log) {}

  net::NodeAddr localAddress() const override {
    return inner_->localAddress();
  }
  void send(const net::NodeAddr& dst,
            std::span<const std::uint8_t> bytes) override {
    journal(0, dst.host, dst.port, bytes);
    inner_->send(dst, bytes);
  }
  void broadcast(std::uint16_t port,
                 std::span<const std::uint8_t> bytes) override {
    journal(1, 0, port, bytes);
    inner_->broadcast(port, bytes);
  }
  std::optional<net::Datagram> receive() override { return inner_->receive(); }
  const net::TransportStats* stats() const override { return inner_->stats(); }

 private:
  void journal(std::uint8_t kind, net::HostId host, std::uint16_t port,
               std::span<const std::uint8_t> bytes) {
    std::vector<std::uint8_t> entry{kind,
                                    static_cast<std::uint8_t>(host & 0xFF),
                                    static_cast<std::uint8_t>(port & 0xFF)};
    entry.insert(entry.end(), bytes.begin(), bytes.end());
    log_->push_back(std::move(entry));
  }

  std::unique_ptr<net::Transport> inner_;
  std::vector<std::vector<std::uint8_t>>* log_;
};

/// Drive a small pub/sub cluster; optionally construct + bind disabled
/// telemetry objects. Returns the full wire journal of every CB.
std::vector<std::vector<std::uint8_t>> runTapped(bool withDisabledTelemetry) {
  net::SimNetwork net(/*seed=*/5);
  std::vector<std::vector<std::uint8_t>> log;
  const net::HostId h0 = net.addHost("alpha");
  const net::HostId h1 = net.addHost("bravo");
  core::CommunicationBackbone cbA(
      "alpha", std::make_unique<TapTransport>(net.bind(h0, 1), &log));
  core::CommunicationBackbone cbB(
      "bravo", std::make_unique<TapTransport>(net.bind(h1, 1), &log));
  TrafficLp traffic("demo.state", 0.05);
  SinkLp sink("demo.state");
  traffic.bind(cbA);
  sink.bind(cbB);
  TelemetryPublisher pubA({.enabled = false});
  TelemetryPublisher pubB({.enabled = false});
  if (withDisabledTelemetry) {
    pubA.bind(cbA);
    pubB.bind(cbB);
  }
  for (double t = 0.0; t < 3.0; t += 0.005) {
    net.advance(0.005);
    cbA.tick(net.now());
    cbB.tick(net.now());
  }
  return log;
}

TEST(TelemetryOffSwitch, DisabledTelemetryIsByteIdenticalOnTheWire) {
  const auto without = runTapped(false);
  const auto with = runTapped(true);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i)
    ASSERT_EQ(without[i], with[i]) << "datagram " << i;
}

TEST(TelemetryOffSwitch, AppBuildsNoTelemetryWhenDisabled) {
  sim::CraneSimulatorApp::Config cfg;
  cfg.displayCount = 1;
  cfg.telemetry.enabled = false;
  sim::CraneSimulatorApp app(cfg);
  EXPECT_EQ(app.telemetryPublisherCount(), 0u);
  EXPECT_EQ(app.clusterMonitor(), nullptr);
  EXPECT_NE(app.instructor().renderClusterText().find("telemetry off"),
            std::string::npos);
}

TEST(TelemetryApp, InstructorStationWatchesTheWholeRack) {
  sim::CraneSimulatorApp::Config cfg;
  cfg.displayCount = 2;
  cfg.telemetry.intervalSec = 0.5;
  cfg.telemetryMonitor.expectedIntervalSec = 0.5;
  sim::CraneSimulatorApp app(cfg);
  ASSERT_TRUE(app.waitUntilWired(10.0));
  app.step(4.0);
  HealthMonitor* monitor = app.clusterMonitor();
  ASSERT_NE(monitor, nullptr);
  // 2 displays + sync + dashboard + platform + dynamics + instructor = 7.
  EXPECT_EQ(monitor->nodeCount(), 7u);
  for (const std::string& name : monitor->nodeNames()) {
    const NodeHealth* h = monitor->node(name);
    EXPECT_GT(h->snapshotsApplied, 0u) << name;
    EXPECT_FALSE(h->silent) << name;
  }
  const std::string window = app.instructor().renderClusterText();
  EXPECT_NE(window.find("CLUSTER HEALTH"), std::string::npos);
  EXPECT_NE(window.find("dynamics"), std::string::npos);
  EXPECT_NE(window.find("instructor"), std::string::npos);
}

TEST(FlightDumpPath, NumbersDumpsBeforeTheLastExtension) {
  using M = HealthMonitor;
  // Dump 0 is the configured path verbatim; later incidents insert ".N"
  // before the last extension so extension-globbing tools see them all.
  EXPECT_EQ(M::flightDumpPath("x.trace.json", 0), "x.trace.json");
  EXPECT_EQ(M::flightDumpPath("x.trace.json", 1), "x.trace.2.json");
  EXPECT_EQ(M::flightDumpPath("x.trace.json", 9), "x.trace.10.json");
  // No extension: append. A dot only in a directory name is not an
  // extension.
  EXPECT_EQ(M::flightDumpPath("dump", 1), "dump.2");
  EXPECT_EQ(M::flightDumpPath("out.d/dump", 1), "out.d/dump.2");
  EXPECT_EQ(M::flightDumpPath("out.d/dump.json", 2), "out.d/dump.3.json");
}

TEST_F(MonitorUnit, RenderTableGoldenAdaptsNodeColumnToLongNames) {
  feed(record(7, 0.0));
  NodeTelemetry other = record(3, 0.0);
  other.node = "zz-instructor-station-backup";
  other.addr = {2, 1};
  monitor.reflectAttributeValues(kTelemetryClass, wrap(encodeTelemetry(other)),
                                 0.0);
  const std::string table = monitor.renderTable();
  // Adaptive width invariant: the 28-char name widens the node column for
  // EVERY line — nothing shears out of alignment.
  std::size_t lineLen = 0;
  std::size_t start = 0;
  while (start < table.size()) {
    const std::size_t end = table.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    if (lineLen == 0) lineLen = end - start;
    EXPECT_EQ(end - start, lineLen) << table;
    start = end + 1;
  }
  // The exact render, golden: single-snapshot nodes, all rates 0, no hot
  // column (nobody runs the phase profiler).
  const std::string golden =
      "+-------------------------------- CLUSTER HEALTH ---------------"
      "------------------+\n"
      "| node                         seq age upd/s loss% rloss% retx/s"
      " B/dg p99ms state |\n"
      "| unit                           7 0.0   0.0   0.0    0.0    0.0"
      "    0   0.0 OK    |\n"
      "| zz-instructor-station-backup   3 0.0   0.0   0.0    0.0    0.0"
      "    0   0.0 OK    |\n"
      "+---------------------------------------------------------------"
      "------------------+\n";
  EXPECT_EQ(table, golden);
}

TEST_F(MonitorUnit, PhaseProfileDerivesHotPhaseAndPhaseP99) {
  NodeTelemetry t1 = record(1, 0.0);
  t1.phaseProfiling = true;
  feed(t1);
  const NodeHealth* h = monitor.node("unit");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->hotPhase, -1);  // one snapshot: no interval to judge yet
  // No interval judged anywhere yet: the hot column stays hidden so a
  // profiler-free cluster's table is unchanged.
  EXPECT_EQ(monitor.renderTable().find("hot"), std::string::npos);

  // Interval work: route dominates by SUMMED time (1000 ticks of 2 ms),
  // flush holds the single slowest sample (one 0.5 s outlier). The hot
  // phase must be route — summed duration, not p99, crowns it.
  NodeTelemetry t2 = record(2, 1.0);
  t2.phaseProfiling = true;
  auto& route = t2.phases[static_cast<std::size_t>(TickPhase::kRoute)];
  route.count = 1000;
  route.sum = 2.0;
  route.min = 0.002;
  route.max = 0.002;
  route.buckets[LogHistogram::bucketOf(0.002, TickPhaseHistograms::kLowest)] =
      1000;
  auto& flush = t2.phases[static_cast<std::size_t>(TickPhase::kFlush)];
  flush.count = 1;
  flush.sum = 0.5;
  flush.min = 0.5;
  flush.max = 0.5;
  flush.buckets[LogHistogram::bucketOf(0.5, TickPhaseHistograms::kLowest)] = 1;
  feed(t2);

  h = monitor.node("unit");
  EXPECT_EQ(h->hotPhase, static_cast<int>(TickPhase::kRoute));
  EXPECT_GT(h->phaseP99Ms[static_cast<std::size_t>(TickPhase::kRoute)],
            0.0);
  EXPECT_GT(h->phaseP99Ms[static_cast<std::size_t>(TickPhase::kFlush)],
            100.0);  // the 0.5 s outlier is still visible in its own p99
  EXPECT_EQ(h->phaseP99Ms[static_cast<std::size_t>(TickPhase::kTimers)],
            0.0);  // empty interval: not judged
  // The health table shows the hot column with the phase's short name.
  const std::string table = monitor.renderTable();
  EXPECT_NE(table.find("hot"), std::string::npos);
  EXPECT_NE(table.find("route"), std::string::npos);
}

TEST(FlightRecorder, CritDumpsAreRateLimitedAndNumbered) {
  TraceRecorder rec(256);
  const std::string base = ::testing::TempDir() + "cod-rate.trace.json";
  const std::string second = ::testing::TempDir() + "cod-rate.trace.2.json";
  std::remove(base.c_str());
  std::remove(second.c_str());

  MonitorConfig cfg;
  cfg.flightDumpMinIntervalSec = 5.0;
  HealthMonitor monitor(cfg);
  monitor.attachFlightRecorder(&rec, base);

  const auto snap = [](std::uint64_t seq, double timeSec) {
    NodeTelemetry t;
    t.seq = seq;
    t.node = "unit";
    t.addr = {1, 1};
    t.nodeTimeSec = timeSec;
    return t;
  };
  const auto feed = [&](const NodeTelemetry& t) {
    core::AttributeSet a;
    a.set(kTelemetryAttr, encodeTelemetry(t));
    monitor.reflectAttributeValues(kTelemetryClass, a, t.nodeTimeSec);
  };

  // CRIT #1 (node silent at t=10): dumps to the base path.
  feed(snap(1, 0.0));
  monitor.step(10.0);
  EXPECT_EQ(monitor.flightRecorderDumps(), 1u);
  EXPECT_TRUE(std::ifstream(base).good());

  // The node flaps: recovers, then goes silent again at t=14 — only 4 s
  // after the last dump. The alarm is raised but the dump is suppressed:
  // a flapping CRIT must not storm the monitor with synchronous I/O.
  feed(snap(2, 10.5));
  monitor.step(14.0);
  const auto countSilent = [&] {
    std::size_t n = 0;
    for (const HealthAlarm& a : monitor.alarms())
      n += a.kind == HealthAlarm::Kind::kNodeSilent ? 1 : 0;
    return n;
  };
  EXPECT_EQ(countSilent(), 2u);
  EXPECT_EQ(monitor.flightRecorderDumps(), 1u);
  EXPECT_FALSE(std::ifstream(second).good());

  // Third CRIT at t=20, 10 s after the last dump: past the limit, and it
  // lands in the NUMBERED file so incident #1's evidence survives.
  feed(snap(3, 14.2));
  monitor.step(20.0);
  EXPECT_EQ(countSilent(), 3u);
  EXPECT_EQ(monitor.flightRecorderDumps(), 2u);
  EXPECT_TRUE(std::ifstream(second).good());
  std::remove(base.c_str());
  std::remove(second.c_str());
}

}  // namespace
}  // namespace cod::telemetry
