#include "core/chandy_misra.hpp"

#include <gtest/gtest.h>

namespace cod::core::cm {
namespace {

/// Records events and forwards them down a chain after a fixed delay.
class Relay : public Node {
 public:
  Relay(std::string name, double lookahead, NodeId next = UINT32_MAX)
      : Node(std::move(name), lookahead), next_(next) {}

  void setNext(NodeId n) { next_ = n; }

  void onEvent(const Event& ev, NodeId from) override {
    seen.push_back(ev);
    froms.push_back(from);
    if (next_ != UINT32_MAX) send(next_, ev.payload + 1, lookahead());
  }

  std::vector<Event> seen;
  std::vector<NodeId> froms;

 private:
  NodeId next_;
};

TEST(ChandyMisra, PipelineDeliversInTimestampOrder) {
  Kernel k;
  Relay a("a", 0.1), b("b", 0.1), c("c", 0.1);
  const NodeId ia = k.add(a), ib = k.add(b), ic = k.add(c);
  k.connect(ia, ib);
  k.connect(ib, ic);
  a.setNext(ib);
  b.setNext(ic);
  for (int i = 0; i < 10; ++i) k.post(ia, {0.05 * i, i});
  k.sealEnvironment();
  const std::size_t processed = k.run(100.0);
  EXPECT_EQ(processed, 30u);  // 10 events through 3 nodes
  ASSERT_EQ(c.seen.size(), 10u);
  for (std::size_t i = 1; i < c.seen.size(); ++i)
    EXPECT_LE(c.seen[i - 1].time, c.seen[i].time);
  // Each hop adds one to the payload and lookahead to the timestamp.
  EXPECT_EQ(c.seen[0].payload, 2);
  EXPECT_NEAR(c.seen[0].time, 0.2, 1e-12);
}

TEST(ChandyMisra, MergeRespectsCrossChannelOrder) {
  // Two sources feed one sink; the sink must process the interleaving in
  // global timestamp order even though each channel alone is sparse.
  Kernel k;
  Relay s1("s1", 0.01), s2("s2", 0.01), sink("sink", 0.01);
  const NodeId i1 = k.add(s1), i2 = k.add(s2), is = k.add(sink);
  k.connect(i1, is);
  k.connect(i2, is);
  s1.setNext(is);
  s2.setNext(is);
  // s1 fires at even times, s2 at odd times.
  for (int i = 0; i < 10; ++i) {
    k.post(i1, {0.2 * i, 100 + i});
    k.post(i2, {0.2 * i + 0.1, 200 + i});
  }
  k.sealEnvironment();
  k.run(100.0);
  ASSERT_EQ(sink.seen.size(), 20u);
  for (std::size_t i = 1; i < sink.seen.size(); ++i)
    EXPECT_LE(sink.seen[i - 1].time, sink.seen[i].time) << i;
}

TEST(ChandyMisra, RingWithLookaheadMakesProgress) {
  // a → b → c → a with finite event cascade: each relay forwards until the
  // horizon; positive lookahead keeps the ring deadlock-free.
  Kernel k;
  struct Ring : Node {
    Ring(std::string n, double la) : Node(std::move(n), la) {}
    NodeId next = 0;
    int hops = 0;
    void onEvent(const Event& ev, NodeId) override {
      ++hops;
      if (ev.payload > 0) send(next, ev.payload - 1, lookahead());
    }
  };
  Ring a("a", 0.1), b("b", 0.1), c("c", 0.1);
  const NodeId ia = k.add(a), ib = k.add(b), ic = k.add(c);
  k.connect(ia, ib);
  k.connect(ib, ic);
  k.connect(ic, ia);
  a.next = ib;
  b.next = ic;
  c.next = ia;
  k.post(ia, {0.0, 30});  // 30 hops around the ring
  k.sealEnvironment();
  const std::size_t processed = k.run(1000.0);
  EXPECT_EQ(processed, 31u);
  EXPECT_GT(k.nullMessagesSent(), 0u);
}

TEST(ChandyMisra, ZeroLookaheadCycleDeadlocks) {
  Kernel k;
  struct Echo : Node {
    Echo(std::string n) : Node(std::move(n), 0.0) {}
    NodeId next = 0;
    void onEvent(const Event& ev, NodeId) override {
      send(next, ev.payload, 0.0);
    }
  };
  Echo a("a"), b("b");
  const NodeId ia = k.add(a), ib = k.add(b);
  k.connect(ia, ib);
  k.connect(ib, ia);
  a.next = ib;
  b.next = ia;
  k.post(ia, {0.0, 1});
  k.sealEnvironment();
  // Zero lookahead in a cycle: either no node is ever safe (deadlock) or
  // events ping-pong at a constant timestamp (livelock, caught by the
  // event cap). Both are reported as runtime_error.
  EXPECT_THROW(k.run(10.0, /*maxEvents=*/100000), std::runtime_error);
}

TEST(ChandyMisra, SendBelowLookaheadIsRejected) {
  Kernel k;
  struct Cheater : Node {
    Cheater() : Node("cheater", 1.0) {}
    NodeId next = 0;
    void onEvent(const Event& ev, NodeId) override {
      send(next, ev.payload, 0.5);  // violates the declared lookahead
    }
  };
  Cheater a;
  Relay b("b", 0.1);
  const NodeId ia = k.add(a), ib = k.add(b);
  k.connect(ia, ib);
  a.next = ib;
  k.post(ia, {0.0, 1});
  k.sealEnvironment();
  EXPECT_THROW(k.run(10.0), std::logic_error);
}

TEST(ChandyMisra, HorizonLimitsProcessing) {
  Kernel k;
  Relay a("a", 0.1);
  const NodeId ia = k.add(a);
  k.post(ia, {1.0, 1});
  k.post(ia, {2.0, 2});
  k.post(ia, {50.0, 3});
  k.sealEnvironment();
  EXPECT_EQ(k.run(10.0), 2u);  // the t=50 event is beyond the horizon
  EXPECT_EQ(k.run(100.0), 1u);
}

TEST(ChandyMisra, OutOfOrderPostRejected) {
  Kernel k;
  Relay a("a", 0.1);
  const NodeId ia = k.add(a);
  k.post(ia, {5.0, 1});
  EXPECT_THROW(k.post(ia, {1.0, 2}), std::logic_error);
}

TEST(ChandyMisra, PostAfterSealRejected) {
  Kernel k;
  Relay a("a", 0.1);
  const NodeId ia = k.add(a);
  k.sealEnvironment();
  EXPECT_THROW(k.post(ia, {0.0, 1}), std::logic_error);
}

TEST(ChandyMisra, LocalClockNeverRegresses) {
  Kernel k;
  Relay src("src", 0.05), dst("dst", 0.05);
  const NodeId is = k.add(src), id = k.add(dst);
  k.connect(is, id);
  src.setNext(id);
  for (int i = 0; i < 20; ++i) k.post(is, {0.1 * i, i});
  k.sealEnvironment();
  k.run(100.0);
  // Clocks end at the last processed timestamps.
  EXPECT_GE(src.localClock(), 1.9 - 1e-9);
  EXPECT_GE(dst.localClock(), 1.95 - 1e-9);
}

}  // namespace
}  // namespace cod::core::cm
