#include "physics/vehicle.hpp"

#include <gtest/gtest.h>

namespace cod::physics {
namespace {

class VehicleTest : public ::testing::Test {
 protected:
  Terrain flat{101, 101, 1.0};
  Vehicle v;

  void SetUp() override { v.setPosition({50, 50}, 0.0); }

  void run(const VehicleInput& in, double seconds) {
    const double dt = 0.01;
    for (double t = 0; t < seconds; t += dt) v.step(in, flat, dt);
  }
};

TEST_F(VehicleTest, AcceleratesUnderThrottle) {
  VehicleInput in;
  in.throttle = 1.0;
  run(in, 2.0);
  EXPECT_GT(v.speed(), 1.0);
  EXPECT_GT(v.position().x, 50.0);
  EXPECT_NEAR(v.position().y, 50.0, 1e-9);  // no steering: straight line
}

TEST_F(VehicleTest, TopSpeedIsCapped) {
  VehicleInput in;
  in.throttle = 1.0;
  run(in, 60.0);
  EXPECT_LE(v.speed(), v.params().maxSpeedMps + 1e-9);
  EXPECT_GT(v.speed(), v.params().maxSpeedMps * 0.9);
}

TEST_F(VehicleTest, BrakingStopsWithoutReversing) {
  VehicleInput go;
  go.throttle = 1.0;
  run(go, 5.0);
  ASSERT_GT(v.speed(), 2.0);
  VehicleInput stop;
  stop.brake = 1.0;
  run(stop, 5.0);
  EXPECT_NEAR(v.speed(), 0.0, 1e-6);
  EXPECT_GE(v.speed(), 0.0);  // brakes never push backwards
}

TEST_F(VehicleTest, CoastingDeceleratesFromDragAndRolling) {
  VehicleInput go;
  go.throttle = 1.0;
  run(go, 5.0);
  const double before = v.speed();
  run(VehicleInput{}, 3.0);
  EXPECT_LT(v.speed(), before);
}

TEST_F(VehicleTest, ReverseDrivesBackwards) {
  VehicleInput in;
  in.throttle = 0.6;
  in.reverse = true;
  run(in, 3.0);
  EXPECT_LT(v.speed(), 0.0);
  EXPECT_LT(v.position().x, 50.0);
  EXPECT_GE(v.speed(), -v.params().reverseSpeedMps - 1e-9);
}

TEST_F(VehicleTest, SteeringTurnsLeftForPositiveInput) {
  VehicleInput in;
  in.throttle = 0.8;
  in.steer = 0.5;
  run(in, 3.0);
  EXPECT_GT(v.heading(), 0.05);  // CCW
  EXPECT_GT(v.position().y, 50.0);
}

TEST_F(VehicleTest, LateralAccelGrowsWithSpeedAndSteer) {
  VehicleInput gentle;
  gentle.throttle = 0.4;
  gentle.steer = 0.2;
  run(gentle, 3.0);
  const double a1 = std::abs(v.lateralAccel());
  VehicleInput hard;
  hard.throttle = 1.0;
  hard.steer = 1.0;
  run(hard, 4.0);
  EXPECT_GT(std::abs(v.lateralAccel()), a1);
}

TEST_F(VehicleTest, RolloverIndexRisesInHardTurns) {
  VehicleInput straight;
  straight.throttle = 1.0;
  run(straight, 4.0);
  const double idxStraight = v.rolloverIndex();
  VehicleInput turning = straight;
  turning.steer = 1.0;
  run(turning, 2.0);
  EXPECT_GT(v.rolloverIndex(), idxStraight);
  EXPECT_GT(v.rolloverIndex(), 0.3);  // crane CG makes hard turns risky
}

TEST_F(VehicleTest, GradeSlowsClimbAndBrakeHolds) {
  // 20% ramp along +x.
  Terrain ramp(101, 101, 1.0);
  for (int j = 0; j < 101; ++j)
    for (int i = 0; i < 101; ++i) ramp.setHeightAt(i, j, 0.2 * i);
  Vehicle flat2, hill;
  flat2.setPosition({50, 50}, 0.0);
  hill.setPosition({50, 50}, 0.0);
  VehicleInput in;
  in.throttle = 0.5;
  const double dt = 0.01;
  for (double t = 0; t < 5.0; t += dt) {
    flat2.step(in, flat, dt);
    hill.step(in, ramp, dt);
  }
  EXPECT_LT(hill.speed(), flat2.speed());

  // With the brake on and no throttle, the crane holds on the grade.
  Vehicle parked;
  parked.setPosition({50, 50}, 0.0);
  VehicleInput hold;
  hold.brake = 1.0;
  for (double t = 0; t < 3.0; t += dt) parked.step(hold, ramp, dt);
  EXPECT_NEAR(parked.speed(), 0.0, 1e-9);
  EXPECT_NEAR(parked.position().x, 50.0, 1e-6);
}

TEST_F(VehicleTest, RollsBackwardOnGradeWithoutBrakes) {
  Terrain ramp(101, 101, 1.0);
  for (int j = 0; j < 101; ++j)
    for (int i = 0; i < 101; ++i) ramp.setHeightAt(i, j, 0.3 * i);
  Vehicle c;
  c.setPosition({50, 50}, 0.0);  // facing uphill
  const double dt = 0.01;
  for (double t = 0; t < 4.0; t += dt) c.step(VehicleInput{}, ramp, dt);
  EXPECT_LT(c.speed(), 0.0);  // gravity wins
}

TEST_F(VehicleTest, TerrainFollowingPosesChassis) {
  Terrain ramp(101, 101, 1.0);
  for (int j = 0; j < 101; ++j)
    for (int i = 0; i < 101; ++i) ramp.setHeightAt(i, j, 0.1 * i);
  Vehicle c;
  c.setPosition({50, 50}, 0.0);
  c.step(VehicleInput{}, ramp, 0.01);
  EXPECT_NEAR(c.position3().z, 5.0, 0.2);
  EXPECT_GT(c.pitch(), 0.0);
  EXPECT_NEAR(c.roll(), 0.0, 1e-9);
}

TEST_F(VehicleTest, OrientationQuaternionMatchesHeading) {
  VehicleInput in;
  in.throttle = 0.5;
  in.steer = 0.3;
  run(in, 2.0);
  const math::Vec3 fwd = v.orientation().rotate({1, 0, 0});
  EXPECT_NEAR(std::atan2(fwd.y, fwd.x), v.heading(), 1e-6);
}

}  // namespace
}  // namespace cod::physics
