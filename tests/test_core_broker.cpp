#include "core/broker.hpp"

#include <gtest/gtest.h>

#include "net/simnet.hpp"

namespace cod::core {
namespace {

class BrokerTest : public ::testing::Test {
 protected:
  BrokerTest() : server(net.bind(net.addHost("server"), 1)) {}

  BrokerClient makeClient(const std::string& name) {
    return BrokerClient(net.bind(net.addHost(name), 1), {0, 1});
  }

  void pump(BrokerServer& s, std::vector<BrokerClient*> clients,
            double seconds = 0.1) {
    for (int i = 0; i < 20; ++i) {
      net.advance(seconds / 20);
      s.tick(net.now());
      for (BrokerClient* c : clients) c->tick(net.now());
    }
  }

  net::SimNetwork net{3};
  BrokerServer server;
};

TEST_F(BrokerTest, SubscribeThenUpdateIsForwarded) {
  BrokerClient pub = makeClient("pub");
  BrokerClient sub = makeClient("sub");
  sub.subscribe("topic");
  pump(server, {&pub, &sub});
  AttributeSet attrs;
  attrs.set("v", 42.0);
  pub.update("topic", attrs, 1.5);
  pump(server, {&pub, &sub});
  const auto d = sub.poll();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->className, "topic");
  EXPECT_DOUBLE_EQ(d->attrs.getDouble("v"), 42.0);
  EXPECT_DOUBLE_EQ(d->timestamp, 1.5);
  EXPECT_EQ(server.updatesRelayed(), 1u);
}

TEST_F(BrokerTest, NoSubscriberMeansNoRelay) {
  BrokerClient pub = makeClient("pub");
  AttributeSet attrs;
  pub.update("nobody", attrs, 0.0);
  pump(server, {&pub});
  EXPECT_EQ(server.updatesRelayed(), 0u);
}

TEST_F(BrokerTest, SelfEchoSuppressed) {
  BrokerClient both = makeClient("both");
  both.subscribe("t");
  pump(server, {&both});
  AttributeSet attrs;
  both.update("t", attrs, 0.0);
  pump(server, {&both});
  EXPECT_FALSE(both.poll().has_value());
}

TEST_F(BrokerTest, FanOutToMultipleSubscribers) {
  BrokerClient pub = makeClient("pub");
  BrokerClient s1 = makeClient("s1");
  BrokerClient s2 = makeClient("s2");
  s1.subscribe("fan");
  s2.subscribe("fan");
  pump(server, {&pub, &s1, &s2});
  EXPECT_EQ(server.subscriberCount("fan"), 2u);
  AttributeSet attrs;
  attrs.set("n", 1);
  pub.update("fan", attrs, 0.0);
  pump(server, {&pub, &s1, &s2});
  EXPECT_TRUE(s1.poll().has_value());
  EXPECT_TRUE(s2.poll().has_value());
  EXPECT_EQ(server.updatesRelayed(), 2u);
}

TEST_F(BrokerTest, DuplicateSubscribeIsIdempotent) {
  BrokerClient sub = makeClient("sub");
  sub.subscribe("t");
  sub.subscribe("t");
  pump(server, {&sub});
  EXPECT_EQ(server.subscriberCount("t"), 1u);
}

TEST_F(BrokerTest, ClassIsolation) {
  BrokerClient pub = makeClient("pub");
  BrokerClient sub = makeClient("sub");
  sub.subscribe("a");
  pump(server, {&pub, &sub});
  AttributeSet attrs;
  pub.update("b", attrs, 0.0);
  pump(server, {&pub, &sub});
  EXPECT_FALSE(sub.poll().has_value());
}

}  // namespace
}  // namespace cod::core
