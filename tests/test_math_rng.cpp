#include "math/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cod::math {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(12);
  bool sawLo = false, sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t v = rng.uniformInt(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    sawLo |= v == 2;
    sawHi |= v == 5;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
  EXPECT_EQ(rng.uniformInt(7, 7), 7);
  EXPECT_EQ(rng.uniformInt(7, 3), 7);  // degenerate range returns lo
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  const int n = 200000;
  double sum = 0, sum2 = 0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalScaled) {
  Rng rng(14);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, ChanceProbability) {
  Rng rng(15);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.chance(0.25)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
  Rng always(16);
  EXPECT_FALSE(always.chance(0.0));
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next() == child.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ReseedResets) {
  Rng rng(18);
  const auto a = rng.next();
  rng.next();
  rng.reseed(18);
  EXPECT_EQ(rng.next(), a);
}

}  // namespace
}  // namespace cod::math
