#include "net/wire.hpp"

#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace cod::net {
namespace {

TEST(Wire, ScalarRoundTrip) {
  WireWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-42);
  w.i64(-1234567890123ll);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  WireReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123ll);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.boolean(), true);
  EXPECT_EQ(r.boolean(), false);
  EXPECT_TRUE(r.atEnd());
  EXPECT_TRUE(r.ok());
}

TEST(Wire, LittleEndianLayout) {
  WireWriter w;
  w.u32(0x11223344);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x44);
  EXPECT_EQ(w.bytes()[1], 0x33);
  EXPECT_EQ(w.bytes()[2], 0x22);
  EXPECT_EQ(w.bytes()[3], 0x11);
}

TEST(Wire, StringRoundTrip) {
  WireWriter w;
  w.str("hello");
  w.str("");
  w.str("utf8 \xE4\xB8\xAD\xE6\x96\x87");
  WireReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), "utf8 \xE4\xB8\xAD\xE6\x96\x87");
}

TEST(Wire, BlobRoundTrip) {
  WireWriter w;
  const std::vector<std::uint8_t> data{1, 2, 3, 0, 255};
  w.blob(data);
  w.blob({});
  WireReader r(w.bytes());
  EXPECT_EQ(r.blob(), data);
  EXPECT_EQ(r.blob(), std::vector<std::uint8_t>{});
}

TEST(Wire, ReadPastEndFails) {
  WireWriter w;
  w.u16(7);
  WireReader r(w.bytes());
  EXPECT_TRUE(r.u16().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.ok());
  // Once broken, everything fails.
  EXPECT_FALSE(r.u8().has_value());
}

TEST(Wire, TruncatedStringFails) {
  WireWriter w;
  w.u16(100);  // claims 100 bytes follow
  w.raw(std::vector<std::uint8_t>{'a', 'b'});
  WireReader r(w.bytes());
  EXPECT_FALSE(r.str().has_value());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, OversizedBlobLengthFails) {
  WireWriter w;
  w.u32(0xFFFFFFFF);  // absurd length
  WireReader r(w.bytes());
  EXPECT_FALSE(r.blob().has_value());
  EXPECT_FALSE(r.ok());
}

TEST(Wire, SpecialDoubles) {
  WireWriter w;
  w.f64(0.0);
  w.f64(-0.0);
  w.f64(std::numeric_limits<double>::infinity());
  w.f64(1e-308);
  WireReader r(w.bytes());
  EXPECT_EQ(r.f64(), 0.0);
  EXPECT_EQ(r.f64(), -0.0);
  EXPECT_EQ(r.f64(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(r.f64(), 1e-308);
}

TEST(Wire, RemainingTracksPosition) {
  WireWriter w;
  w.u32(1);
  w.u32(2);
  WireReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 8u);
  r.u32();
  EXPECT_EQ(r.remaining(), 4u);
}

/// Property: random value sequences round-trip exactly.
TEST(WireProperty, RandomRoundTrips) {
  math::Rng rng(21);
  for (int iter = 0; iter < 100; ++iter) {
    std::vector<std::uint64_t> u64s;
    std::vector<double> f64s;
    std::vector<std::string> strs;
    WireWriter w;
    for (int i = 0; i < 16; ++i) {
      u64s.push_back(rng.next());
      w.u64(u64s.back());
      f64s.push_back(rng.normal(0, 1e6));
      w.f64(f64s.back());
      std::string s;
      const int len = static_cast<int>(rng.uniformInt(0, 32));
      for (int k = 0; k < len; ++k)
        s.push_back(static_cast<char>(rng.uniformInt(32, 126)));
      strs.push_back(s);
      w.str(s);
    }
    WireReader r(w.bytes());
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(r.u64(), u64s[i]);
      EXPECT_EQ(r.f64(), f64s[i]);
      EXPECT_EQ(r.str(), strs[i]);
    }
    EXPECT_TRUE(r.atEnd());
  }
}

}  // namespace
}  // namespace cod::net
