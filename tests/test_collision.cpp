#include "collision/world.hpp"

#include <gtest/gtest.h>

#include <set>

#include "math/rng.hpp"

namespace cod::collision {
namespace {

using math::Mat4;
using math::Vec3;

TEST(Shape, BoxHasTwelveTriangles) {
  const auto box = Shape::box({2, 2, 2});
  EXPECT_EQ(box->triangleCount(), 12u);
  EXPECT_NEAR(box->localSphere().radius, std::sqrt(3.0), 1e-9);
  EXPECT_EQ(box->localAabb().lo, Vec3(-1, -1, -1));
  EXPECT_EQ(box->localAabb().hi, Vec3(1, 1, 1));
}

TEST(Shape, CylinderTriangleCount) {
  const auto cyl = Shape::cylinder(0.5, 2.0, 8);
  EXPECT_EQ(cyl->triangleCount(), 8u * 4u);  // 2 side + 2 caps per segment
  EXPECT_THROW(Shape::cylinder(0.5, 2.0, 2), std::invalid_argument);
}

TEST(Shape, RejectsEmptyAndBadIndices) {
  EXPECT_THROW(Shape({}, {}), std::invalid_argument);
  EXPECT_THROW(Shape({{0, 0, 0}}, {{{0, 1, 2}}}), std::out_of_range);
}

TEST(Object, WorldVolumesFollowTransform) {
  World w;
  const auto id = w.add("box", Shape::box({2, 2, 2}),
                        Mat4::translation({10, 0, 0}));
  const Object* o = w.find(id);
  ASSERT_NE(o, nullptr);
  EXPECT_EQ(o->worldSphere().center, Vec3(10, 0, 0));
  EXPECT_EQ(o->worldAabb().lo, Vec3(9, -1, -1));
  // Rotation by 45 deg about z grows the AABB but not the sphere.
  w.setTransform(id, Mat4::rigid(math::Quat::fromAxisAngle({0, 0, 1},
                                                           math::kPi / 4),
                                 {10, 0, 0}));
  EXPECT_NEAR(o->worldSphere().radius, std::sqrt(3.0), 1e-9);
  EXPECT_NEAR(o->worldAabb().hi.x - 10.0, std::sqrt(2.0), 1e-9);
}

TEST(World, DisjointObjectsNoContact) {
  World w;
  w.add("a", Shape::box({1, 1, 1}), Mat4::translation({0, 0, 0}));
  w.add("b", Shape::box({1, 1, 1}), Mat4::translation({5, 0, 0}));
  EXPECT_TRUE(w.query().empty());
  EXPECT_TRUE(w.queryNaive().empty());
}

TEST(World, OverlappingBoxesContact) {
  World w;
  const auto a = w.add("a", Shape::box({2, 2, 2}), Mat4::translation({0, 0, 0}));
  const auto b = w.add("b", Shape::box({2, 2, 2}),
                       Mat4::translation({1.5, 0, 0}));
  const auto contacts = w.query();
  ASSERT_EQ(contacts.size(), 1u);
  EXPECT_EQ(std::minmax(contacts[0].idA, contacts[0].idB),
            std::minmax(a, b));
}

TEST(World, LevelsPruneInOrder) {
  World w;
  w.add("a", Shape::box({1, 1, 1}), Mat4::translation({0, 0, 0}));
  // Sphere-level reject: far away.
  w.add("far", Shape::box({1, 1, 1}), Mat4::translation({100, 100, 100}));
  QueryStats s;
  w.query(&s);
  EXPECT_EQ(s.contacts, 0u);
  EXPECT_EQ(s.triangleTests, 0u);  // never reached level 3

  // AABB-level reject: spheres overlap (diagonal corners) but boxes do not.
  World w2;
  w2.add("a", Shape::box({2, 2, 2}), Mat4::translation({0, 0, 0}));
  w2.add("b", Shape::box({2, 2, 2}),
         Mat4::rigid(math::Quat::fromAxisAngle({0, 0, 1}, math::kPi / 4),
                     {2.4, 0, 0}));
  QueryStats s2;
  const auto pair = World::testPair(*w2.find(1), *w2.find(2), &s2);
  EXPECT_GE(s2.sphereTests, 1u);
  (void)pair;  // outcome depends on geometry; the stats are what we check
}

TEST(World, TestPairCountsEachLevel) {
  World w;
  const auto a = w.add("a", Shape::box({2, 2, 2}), Mat4::identity());
  const auto b = w.add("b", Shape::box({2, 2, 2}),
                       Mat4::translation({1.0, 0, 0}));
  QueryStats s;
  const auto c = World::testPair(*w.find(a), *w.find(b), &s);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(s.sphereTests, 1u);
  EXPECT_EQ(s.aabbTests, 1u);
  EXPECT_GE(s.triangleTests, 1u);
  EXPECT_EQ(s.contacts, 1u);
}

TEST(World, QueryOneIgnoresOtherPairs) {
  World w;
  const auto probe =
      w.add("probe", Shape::box({1, 1, 1}), Mat4::translation({0, 0, 0}));
  w.add("near", Shape::box({1, 1, 1}), Mat4::translation({0.5, 0, 0}));
  // These two collide with each other but not with the probe.
  w.add("x", Shape::box({1, 1, 1}), Mat4::translation({20, 0, 0}));
  w.add("y", Shape::box({1, 1, 1}), Mat4::translation({20.5, 0, 0}));
  const auto contacts = w.queryOne(probe);
  ASSERT_EQ(contacts.size(), 1u);
}

TEST(World, RemoveDeletesObject) {
  World w;
  const auto a = w.add("a", Shape::box({1, 1, 1}), Mat4::identity());
  const auto b = w.add("b", Shape::box({1, 1, 1}),
                       Mat4::translation({0.5, 0, 0}));
  EXPECT_EQ(w.query().size(), 1u);
  w.remove(b);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_TRUE(w.query().empty());
  EXPECT_EQ(w.find(b), nullptr);
  EXPECT_NE(w.find(a), nullptr);
}

TEST(World, ThinBarAgainstCube) {
  // The scenario case: a thin horizontal cylinder (bar) and the cargo cube.
  World w;
  const auto bar = w.add(
      "bar", Shape::cylinder(0.06, 4.0, 8),
      Mat4::rigid(math::Quat::fromAxisAngle({0, 1, 0}, math::kPi / 2),
                  {0, 0, 1.3}));
  const auto cargo =
      w.add("cargo", Shape::box({1, 1, 1}), Mat4::translation({0, 0, 1.2}));
  EXPECT_EQ(w.query().size(), 1u);
  // Lift the cargo above the bar: clear.
  w.setTransform(cargo, Mat4::translation({0, 0, 2.5}));
  EXPECT_TRUE(w.query().empty());
  (void)bar;
}

/// Property: multi-level and naive queries agree on every random scene.
TEST(WorldProperty, MultiLevelMatchesNaive) {
  math::Rng rng(31);
  for (int scene = 0; scene < 20; ++scene) {
    World w(4.0);
    const int n = 14;
    for (int i = 0; i < n; ++i) {
      const Vec3 pos{rng.uniform(0, 25), rng.uniform(0, 25),
                     rng.uniform(0, 4)};
      const math::Quat q = math::Quat::fromAxisAngle(
          {rng.uniform(-1, 1), rng.uniform(-1, 1), rng.uniform(-1, 1)},
          rng.uniform(0, 3));
      if (rng.chance(0.5)) {
        w.add("box", Shape::box({rng.uniform(0.5, 3), rng.uniform(0.5, 3),
                                 rng.uniform(0.5, 3)}),
              Mat4::rigid(q, pos));
      } else {
        w.add("cyl",
              Shape::cylinder(rng.uniform(0.2, 1.0), rng.uniform(0.5, 4), 8),
              Mat4::rigid(q, pos));
      }
    }
    auto key = [](const Contact& c) { return std::minmax(c.idA, c.idB); };
    std::set<std::pair<std::uint32_t, std::uint32_t>> fast, naive;
    for (const Contact& c : w.query()) fast.insert(key(c));
    for (const Contact& c : w.queryNaive()) naive.insert(key(c));
    EXPECT_EQ(fast, naive) << "scene " << scene;
  }
}

TEST(World, MultiLevelDoesFarLessWorkThanNaive) {
  math::Rng rng(33);
  World w(8.0);
  for (int i = 0; i < 40; ++i) {
    w.add("box", Shape::box({1, 1, 1}),
          Mat4::translation({rng.uniform(0, 60), rng.uniform(0, 60),
                             rng.uniform(0, 5)}));
  }
  QueryStats fast, naive;
  w.query(&fast);
  w.queryNaive(&naive);
  EXPECT_LT(fast.triangleTests, naive.triangleTests / 10);
}

}  // namespace
}  // namespace cod::collision
