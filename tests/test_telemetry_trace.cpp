// Latency-tracing suite: LogHistogram bucket math, the TraceRecorder
// flight-recorder ring (wraparound, concurrency, Chrome-JSON dump), the
// sampling off-switch's wire byte-identity, end-to-end sampled latency on
// a SimNetwork cluster, and the CRIT-alarm-triggered automatic dump —
// the ISSUE's 4-node acceptance scenario.
#include "telemetry/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cb.hpp"
#include "net/simnet.hpp"
#include "telemetry/hist.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/node_telemetry.hpp"
#include "telemetry/publisher.hpp"

namespace cod::telemetry {
namespace {

// ---- LogHistogram -------------------------------------------------------

TEST(LogHistogram, BucketIndexIsMonotoneAndBounded) {
  const double lowest = 1e-5;
  EXPECT_EQ(LogHistogram::bucketOf(0.0, lowest), 0u);
  EXPECT_EQ(LogHistogram::bucketOf(lowest, lowest), 0u);
  std::size_t prev = 0;
  for (double v = lowest; v < 1e3; v *= 1.31) {
    const std::size_t idx = LogHistogram::bucketOf(v, lowest);
    EXPECT_GE(idx, prev) << "v=" << v;
    EXPECT_LT(idx, kHistBuckets) << "v=" << v;
    // Within range, the bucket's upper edge never underestimates the
    // value it holds (the top bucket is the clamp catch-all).
    if (idx < kHistBuckets - 1) {
      EXPECT_GE(LogHistogram::bucketUpperBound(idx, lowest), v * 0.999999);
    }
    prev = idx;
  }
  // Far beyond the range: clamped to the top bucket, not out of bounds.
  EXPECT_EQ(LogHistogram::bucketOf(1e30, lowest), kHistBuckets - 1);
}

TEST(LogHistogram, RecordTracksScalarsAndPercentiles) {
  LogHistogram h(1e-5);
  // 90 samples at ~1 ms, 10 at ~100 ms: p50 near 1 ms, p99 near 100 ms.
  for (int i = 0; i < 90; ++i) h.record(1e-3);
  for (int i = 0; i < 10; ++i) h.record(0.1);
  h.record(-5.0);  // clamped to 0, lands in bucket 0
  const HistogramSnapshot& s = h.snapshot();
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.min, 0.0);
  EXPECT_DOUBLE_EQ(s.max, 0.1);
  EXPECT_NEAR(s.sum, 90 * 1e-3 + 10 * 0.1, 1e-9);
  // Log buckets at 4/octave resolve within ~19% relative error.
  EXPECT_NEAR(LogHistogram::percentile(s, 0.50, h.lowest()), 1e-3, 0.25e-3);
  EXPECT_NEAR(LogHistogram::percentile(s, 0.99, h.lowest()), 0.1, 0.025);
  EXPECT_GE(LogHistogram::percentile(s, 1.0, h.lowest()), 0.1);
  EXPECT_EQ(LogHistogram::percentile(HistogramSnapshot{}, 0.5, 1e-5), 0.0);
}

TEST(LogHistogram, DiffYieldsIntervalSnapshot) {
  LogHistogram h(1e-5);
  for (int i = 0; i < 50; ++i) h.record(1e-3);
  const HistogramSnapshot before = h.snapshot();
  for (int i = 0; i < 30; ++i) h.record(0.2);
  const HistogramSnapshot d = LogHistogram::diff(h.snapshot(), before);
  EXPECT_EQ(d.count, 30u);
  EXPECT_NEAR(d.sum, 30 * 0.2, 1e-9);
  // Only the interval's bucket grew.
  EXPECT_EQ(d.buckets[LogHistogram::bucketOf(0.2, 1e-5)], 30u);
  EXPECT_EQ(d.buckets[LogHistogram::bucketOf(1e-3, 1e-5)], 0u);
  // The interval's percentile reads the new samples, not the old mass.
  EXPECT_NEAR(LogHistogram::percentile(d, 0.5, 1e-5), 0.2, 0.05);
}

TEST(CbHistogramsTable, NamesAndBoundsAreStable) {
  CbHistograms hists;
  ASSERT_EQ(CbHistograms::kCount, 4u);
  EXPECT_STREQ(CbHistograms::name(CbHistograms::kDeliveryLatencyIdx),
               "latency.deliverySec");
  EXPECT_STREQ(CbHistograms::name(1), "cb.tickDurationSec");
  EXPECT_STREQ(CbHistograms::name(2), "batch.flushBytes");
  EXPECT_STREQ(CbHistograms::name(3), "reliable.retxDelaySec");
  for (std::size_t i = 0; i < CbHistograms::kCount; ++i) {
    EXPECT_EQ(hists.at(i).lowest(), CbHistograms::lowestOf(i)) << i;
    EXPECT_GT(CbHistograms::lowestOf(i), 0.0) << i;
  }
}

// ---- TraceRecorder ring -------------------------------------------------

TEST(TraceRecorder, RingKeepsTheLastCapacityEvents) {
  TraceRecorder rec(/*capacity=*/1);  // rounded up to the 16 minimum
  ASSERT_EQ(rec.capacity(), 16u);
  const std::uint16_t lane = rec.registerLane("ring");
  for (std::uint64_t i = 0; i < 40; ++i)
    rec.record(TraceEventKind::kInOrderRelease, lane,
               static_cast<double>(i), 0.0, /*a=*/i);
  EXPECT_EQ(rec.recorded(), 40u);
  const auto events = rec.snapshotEvents();
  ASSERT_EQ(events.size(), 16u);
  // Oldest first, and only the newest capacity() events survive.
  EXPECT_EQ(events.front().a, 24u);
  EXPECT_EQ(events.back().a, 39u);
  for (std::size_t i = 1; i < events.size(); ++i)
    EXPECT_EQ(events[i].a, events[i - 1].a + 1);
}

TEST(TraceRecorder, DisabledRecordsNothing) {
  TraceRecorder rec(64);
  const std::uint16_t lane = rec.registerLane("off");
  rec.setEnabled(false);
  EXPECT_FALSE(rec.enabled());
  rec.record(TraceEventKind::kTickBegin, lane, 1.0);
  EXPECT_EQ(rec.recorded(), 0u);
  EXPECT_TRUE(rec.snapshotEvents().empty());
  rec.setEnabled(true);
  rec.record(TraceEventKind::kTickBegin, lane, 2.0);
  EXPECT_EQ(rec.recorded(), 1u);
}

TEST(TraceRecorder, DumpJsonIsWellFormedChromeTrace) {
  TraceRecorder rec(64);
  const std::uint16_t cbLane = rec.registerLane("alpha");
  const std::uint16_t monLane = rec.registerLane("health-monitor");
  rec.record(TraceEventKind::kTickEnd, cbLane, 1.0, 0.002, /*a=*/7);
  rec.record(TraceEventKind::kDatagramSend, cbLane, 1.001, 0.0, 512);
  rec.record(TraceEventKind::kPublisherSpan, cbLane, 1.0, 0.05, 42, 3);
  rec.record(TraceEventKind::kAlarmRaised, monLane, 1.2);
  // Hostile values must not corrupt the JSON: a non-finite timestamp and
  // an out-of-range kind byte are sanitized at dump time.
  rec.record(TraceEventKind::kTickBegin, cbLane,
             std::numeric_limits<double>::quiet_NaN());
  rec.record(static_cast<TraceEventKind>(250), cbLane, 1.3);
  const std::string json = rec.dumpJson();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // instants
  EXPECT_NE(json.find("update e2e"), std::string::npos);
  EXPECT_NE(json.find("alarm raised"), std::string::npos);
  // Lane names ride as thread_name metadata for the viewer's track list.
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("alpha"), std::string::npos);
  EXPECT_NE(json.find("health-monitor"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
  // Balanced braces/brackets — the cheap structural sanity check.
  std::int64_t braces = 0, brackets = 0;
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) inString = !inString;
    if (inString) continue;
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(inString);
}

TEST(TraceRecorder, ConcurrentRecordAndSnapshotStress) {
  TraceRecorder rec(256);
  const std::uint16_t lane = rec.registerLane("stress");
  static constexpr int kThreads = 4;
  static constexpr std::uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&rec, lane, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i)
        rec.record(TraceEventKind::kDatagramRecv, lane,
                   static_cast<double>(i), 0.0, i,
                   static_cast<std::uint64_t>(t));
    });
  }
  // A reader snapshots concurrently: every observed event must be whole
  // (valid kind, lane, and a payload some writer actually produced).
  workers.emplace_back([&rec, lane] {
    for (int i = 0; i < 50; ++i) {
      for (const TraceEvent& e : rec.snapshotEvents()) {
        ASSERT_EQ(e.kind, TraceEventKind::kDatagramRecv);
        ASSERT_EQ(e.lane, lane);
        ASSERT_LT(e.a, kPerThread);
        ASSERT_LT(e.b, static_cast<std::uint64_t>(kThreads));
      }
    }
  });
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(rec.recorded(), kThreads * kPerThread);
  EXPECT_EQ(rec.snapshotEvents().size(), rec.capacity());
}

// ---- wire byte-identity with sampling off -------------------------------

core::AttributeSet sampleAttrs() {
  core::AttributeSet a;
  a.set("speed", 4.5);
  a.set("on", true);
  return a;
}

/// Publishes `cls` reliably every `intervalSec` of virtual time.
class ReliableTrafficLp : public core::LogicalProcess {
 public:
  ReliableTrafficLp(std::string cls, double intervalSec)
      : core::LogicalProcess("traffic"), cls_(std::move(cls)),
        interval_(intervalSec) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    pub_ = cb.publishObjectClass(*this, cls_, net::QosClass::kReliableOrdered);
  }

  void step(double now) override {
    if (now - last_ < interval_) return;
    backbone()->updateAttributeValues(pub_, sampleAttrs(), now);
    last_ = now;
  }

 private:
  std::string cls_;
  double interval_;
  double last_ = -1e300;
  core::PublicationHandle pub_ = core::kInvalidHandle;
};

class ReliableSinkLp : public core::LogicalProcess {
 public:
  explicit ReliableSinkLp(std::string cls)
      : core::LogicalProcess("sink"), cls_(std::move(cls)) {}

  void bind(core::CommunicationBackbone& cb) {
    cb.attach(*this);
    cb.subscribeObjectClass(*this, cls_, net::QosClass::kReliableOrdered);
  }

  void reflectAttributeValues(const std::string& className,
                              const core::AttributeSet&, double) override {
    if (className == cls_) ++seen_;
  }

  std::uint64_t seen() const { return seen_; }

 private:
  std::string cls_;
  std::uint64_t seen_ = 0;
};

/// Transport decorator journaling every outbound datagram (same shape as
/// the telemetry off-switch tap).
class TapTransport final : public net::Transport {
 public:
  TapTransport(std::unique_ptr<net::Transport> inner,
               std::vector<std::vector<std::uint8_t>>* log)
      : inner_(std::move(inner)), log_(log) {}

  net::NodeAddr localAddress() const override {
    return inner_->localAddress();
  }
  void send(const net::NodeAddr& dst,
            std::span<const std::uint8_t> bytes) override {
    log_->emplace_back(bytes.begin(), bytes.end());
    inner_->send(dst, bytes);
  }
  void broadcast(std::uint16_t port,
                 std::span<const std::uint8_t> bytes) override {
    log_->emplace_back(bytes.begin(), bytes.end());
    inner_->broadcast(port, bytes);
  }
  std::optional<net::Datagram> receive() override { return inner_->receive(); }
  const net::TransportStats* stats() const override { return inner_->stats(); }

 private:
  std::unique_ptr<net::Transport> inner_;
  std::vector<std::vector<std::uint8_t>>* log_;
};

/// Run a 2-node reliable stream; optionally hand both CBs a recorder
/// (sampling stays OFF either way). Returns every datagram sent.
std::vector<std::vector<std::uint8_t>> runTapped(bool withRecorder) {
  net::SimNetwork net(/*seed=*/9);
  std::vector<std::vector<std::uint8_t>> log;
  const net::HostId h0 = net.addHost("alpha");
  const net::HostId h1 = net.addHost("bravo");
  TraceRecorder rec(1024);
  core::CommunicationBackbone::Config cfg;
  cfg.trace = withRecorder ? &rec : nullptr;
  cfg.traceSampleEvery = 0;  // the guarantee under test
  core::CommunicationBackbone cbA(
      "alpha", std::make_unique<TapTransport>(net.bind(h0, 1), &log), cfg);
  core::CommunicationBackbone cbB(
      "bravo", std::make_unique<TapTransport>(net.bind(h1, 1), &log), cfg);
  ReliableTrafficLp traffic("demo.state", 0.05);
  ReliableSinkLp sink("demo.state");
  traffic.bind(cbA);
  sink.bind(cbB);
  for (double t = 0.0; t < 3.0; t += 0.005) {
    net.advance(0.005);
    cbA.tick(net.now());
    cbB.tick(net.now());
  }
  if (withRecorder) {
    // The recorder observed the run (ticks, datagrams)...
    EXPECT_GT(rec.recorded(), 0u);
  }
  return log;
}

TEST(TraceSampling, SamplingOffIsByteIdenticalOnTheWire) {
  const auto without = runTapped(false);
  const auto with = runTapped(true);
  ASSERT_EQ(without.size(), with.size());
  for (std::size_t i = 0; i < without.size(); ++i)
    ASSERT_EQ(without[i], with[i]) << "datagram " << i;
}

// ---- end-to-end sampled latency -----------------------------------------

TEST(TraceSampling, PublisherMeasuresEndToEndLatencyFromEcho) {
  net::SimNetwork net(/*seed=*/13);
  const net::HostId h0 = net.addHost("alpha");
  const net::HostId h1 = net.addHost("bravo");
  TraceRecorder rec(4096);
  core::CommunicationBackbone::Config cfg;
  cfg.trace = &rec;
  cfg.traceSampleEvery = 4;
  core::CommunicationBackbone cbA("alpha", net.bind(h0, 1), cfg);
  core::CommunicationBackbone cbB("bravo", net.bind(h1, 1), cfg);
  ReliableTrafficLp traffic("crane.state", 0.05);
  ReliableSinkLp sink("crane.state");
  traffic.bind(cbA);
  sink.bind(cbB);
  for (double t = 0.0; t < 5.0; t += 0.005) {
    net.advance(0.005);
    cbA.tick(net.now());
    cbB.tick(net.now());
  }
  EXPECT_GT(sink.seen(), 50u);

  // The publisher's delivery-latency histogram filled from WINDOW_ACK
  // echoes — publish -> in-order release plus the echo's return transit,
  // so every sample is nonnegative and bounded by the run.
  const HistogramSnapshot& lat =
      cbA.histograms().at(CbHistograms::kDeliveryLatencyIdx).snapshot();
  EXPECT_GT(lat.count, 5u);
  EXPECT_GE(lat.min, 0.0);
  EXPECT_LT(lat.max, 5.0);
  // The subscriber side never sees an echo of its own.
  EXPECT_EQ(
      cbB.histograms().at(CbHistograms::kDeliveryLatencyIdx).count(), 0u);

  // Both halves of the sampled update's story are in the recorder.
  bool sawPublisherSpan = false, sawSubscriberSpan = false, sawTag = false;
  for (const TraceEvent& e : rec.snapshotEvents()) {
    sawPublisherSpan |= e.kind == TraceEventKind::kPublisherSpan;
    sawSubscriberSpan |= e.kind == TraceEventKind::kSubscriberSpan;
    sawTag |= e.kind == TraceEventKind::kUpdatePublished;
  }
  EXPECT_TRUE(sawPublisherSpan);
  EXPECT_TRUE(sawSubscriberSpan);
  EXPECT_TRUE(sawTag);
  const std::string json = rec.dumpJson();
  EXPECT_NE(json.find("update e2e"), std::string::npos);
  EXPECT_NE(json.find("update hold+release"), std::string::npos);
}

// ---- CRIT alarms auto-dump the flight recorder --------------------------

core::AttributeSet wrapRecord(const NodeTelemetry& t) {
  core::AttributeSet a;
  a.set(kTelemetryAttr, encodeTelemetry(t));
  return a;
}

TEST(FlightRecorder, CritAlarmEdgeDumpsTheRing) {
  TraceRecorder rec(256);
  const std::string path = ::testing::TempDir() + "cod-trace-crit.json";
  std::remove(path.c_str());
  HealthMonitor monitor;
  monitor.attachFlightRecorder(&rec, path);

  const auto pinned = [](std::uint64_t seq, double timeSec,
                         std::uint64_t retx) {
    NodeTelemetry t;
    t.seq = seq;
    t.node = "unit";
    t.addr = {1, 1};
    t.nodeTimeSec = timeSec;
    core::CbChannelHealth c;
    c.channelId = 7;
    c.className = "crane.state";
    c.outbound = true;
    c.live = true;
    c.qos = net::QosClass::kReliableOrdered;
    c.windowFrames = 512;
    c.retransmits = retx;
    return t.channels.push_back(c), t;
  };
  monitor.reflectAttributeValues(kTelemetryClass, wrapRecord(pinned(1, 0.0, 0)),
                                 0.0);
  // Snapshot 2: channel retransmit storm — a WARNING edge records an
  // event but must not dump.
  monitor.reflectAttributeValues(kTelemetryClass,
                                 wrapRecord(pinned(2, 1.0, 100)), 1.0);
  EXPECT_EQ(monitor.flightRecorderDumps(), 0u);
  bool sawAlarmEvent = false;
  for (const TraceEvent& e : rec.snapshotEvents())
    sawAlarmEvent |= e.kind == TraceEventKind::kAlarmRaised;
  EXPECT_TRUE(sawAlarmEvent);
  {
    std::ifstream in(path);
    EXPECT_FALSE(in.good()) << "WARNING alarm must not dump";
  }

  // Snapshot 3: the window held pinned across two snapshots — CRITICAL,
  // and the ring lands on disk for the operator.
  monitor.reflectAttributeValues(kTelemetryClass,
                                 wrapRecord(pinned(3, 2.0, 200)), 2.0);
  EXPECT_EQ(monitor.flightRecorderDumps(), 1u);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  EXPECT_NE(body.str().find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(body.str().find("alarm raised"), std::string::npos);
  std::remove(path.c_str());
}

// ---- the ISSUE's 4-node acceptance scenario -----------------------------

/// Four CBs on one SimNetwork share a flight recorder; sampled reliable
/// updates flow; a partition forces a CRIT (NODE_SILENT) and the
/// automatic dump must contain both publisher and subscriber spans of at
/// least one sampled update.
TEST(FlightRecorder, FourNodeAcceptanceCritDumpCarriesSampledSpans) {
  net::SimNetwork net(/*seed=*/29);
  TraceRecorder rec(1 << 14);
  std::vector<std::unique_ptr<core::CommunicationBackbone>> cbs;
  for (const char* name : {"n0", "n1", "n2", "n3"}) {
    const net::HostId h = net.addHost(name);
    core::CommunicationBackbone::Config cfg;
    cfg.trace = &rec;
    cfg.traceSampleEvery = 2;
    cbs.push_back(std::make_unique<core::CommunicationBackbone>(
        name, net.bind(h, 1), cfg));
  }
  ReliableTrafficLp traffic("mesh.a", 1.0 / 16.0);
  ReliableSinkLp sink2("mesh.a"), sink3("mesh.a");
  traffic.bind(*cbs[1]);
  sink2.bind(*cbs[2]);
  sink3.bind(*cbs[3]);
  TelemetryConfig tcfg;
  tcfg.intervalSec = 0.25;
  std::vector<std::unique_ptr<TelemetryPublisher>> pubs;
  for (auto& cb : cbs) {
    pubs.push_back(std::make_unique<TelemetryPublisher>(tcfg));
    pubs.back()->bind(*cb);
  }
  MonitorConfig mcfg;
  mcfg.expectedIntervalSec = tcfg.intervalSec;
  mcfg.silentAfterIntervals = 6.0;
  HealthMonitor monitor(mcfg);
  monitor.bind(*cbs[0]);
  const std::string path = ::testing::TempDir() + "cod-trace-acceptance.json";
  std::remove(path.c_str());
  monitor.attachFlightRecorder(&rec, path);

  const auto run = [&](double seconds) {
    const double until = net.now() + seconds;
    while (net.now() < until) {
      net.advance(0.005);
      for (auto& cb : cbs) cb->tick(net.now());
    }
  };
  run(5.0);
  EXPECT_GT(sink2.seen(), 30u);
  EXPECT_EQ(monitor.flightRecorderDumps(), 0u);

  // n2 goes dark: NODE_SILENT is critical, and the dump fires.
  for (net::HostId other : {0u, 1u, 3u}) net.setPartitioned(2, other, true);
  run(6.0);
  ASSERT_GE(monitor.flightRecorderDumps(), 1u);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream body;
  body << in.rdbuf();
  const std::string json = body.str();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  // Publisher and subscriber spans of sampled updates made it into the
  // flight recording, on named lanes, alongside the alarm edge itself.
  EXPECT_NE(json.find("update e2e"), std::string::npos);
  EXPECT_NE(json.find("update hold+release"), std::string::npos);
  EXPECT_NE(json.find("alarm raised"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("n1"), std::string::npos);  // publisher lane named
  std::remove(path.c_str());
}

}  // namespace
}  // namespace cod::telemetry
