#include "sim/recorder.hpp"

#include <gtest/gtest.h>

#include "core/cluster.hpp"
#include "sim/instructor_module.hpp"
#include "sim/object_classes.hpp"

namespace cod::sim {
namespace {

RecordedUpdate makeRecord(double t, const std::string& cls, double v) {
  core::AttributeSet a;
  a.set("v", v);
  return {t, cls, a};
}

TEST(Recording, SerializeRoundTrip) {
  Recording rec;
  rec.append(makeRecord(0.5, "crane.state", 1.0));
  rec.append(makeRecord(1.0, "scenario.events", 2.0));
  const auto bytes = rec.serialize();
  const auto back = Recording::deserialize(bytes);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 2u);
  EXPECT_DOUBLE_EQ(back->records()[0].timeSec, 0.5);
  EXPECT_EQ(back->records()[1].className, "scenario.events");
  EXPECT_DOUBLE_EQ(back->records()[1].attrs.getDouble("v"), 2.0);
  EXPECT_DOUBLE_EQ(back->durationSec(), 1.0);
}

TEST(Recording, RejectsCorruptData) {
  Recording rec;
  rec.append(makeRecord(0.0, "x", 1.0));
  auto bytes = rec.serialize();
  bytes[0] ^= 0xFF;  // break the magic
  EXPECT_FALSE(Recording::deserialize(bytes).has_value());
  auto truncated = rec.serialize();
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(Recording::deserialize(truncated).has_value());
  EXPECT_FALSE(Recording::deserialize(std::vector<std::uint8_t>{}).has_value());
}

TEST(Recording, SaveLoadFile) {
  Recording rec;
  for (int i = 0; i < 10; ++i) rec.append(makeRecord(0.1 * i, "c", i));
  const std::string path = ::testing::TempDir() + "/cod_session.codr";
  ASSERT_TRUE(rec.save(path));
  const auto loaded = Recording::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 10u);
  EXPECT_FALSE(Recording::load("/nonexistent/nope").has_value());
}

class Pub : public core::LogicalProcess {
 public:
  Pub() : core::LogicalProcess("pub") {}
  void bind(core::CommunicationBackbone& cb, const std::string& cls) {
    cb.attach(*this);
    handle = cb.publishObjectClass(*this, cls);
  }
  core::PublicationHandle handle = core::kInvalidHandle;
};

TEST(SessionRecorder, JournalsSubscribedClasses) {
  core::CodCluster cluster;
  auto& cbA = cluster.addComputer("src");
  auto& cbB = cluster.addComputer("rec");
  Pub pub;
  pub.bind(cbA, "crane.state");
  Pub other;
  other.bind(cbA, "uninteresting");
  SessionRecorder recorder({"crane.state"});
  recorder.bind(cbB);
  cluster.step(0.5);  // wire up
  for (int i = 0; i < 5; ++i) {
    core::AttributeSet a;
    a.set("i", i);
    cbA.updateAttributeValues(pub.handle, a, 0.1 * i);
    cbA.updateAttributeValues(other.handle, a, 0.1 * i);
    cluster.step(0.05);
  }
  ASSERT_EQ(recorder.recording().size(), 5u);
  EXPECT_EQ(recorder.recording().records()[2].attrs.getInt("i"), 2);
  EXPECT_EQ(recorder.recording().records()[2].className, "crane.state");
}

TEST(SessionReplayer, ReplaysInOriginalOrderAndPace) {
  Recording rec;
  for (int i = 0; i < 20; ++i) rec.append(makeRecord(1.0 + 0.1 * i, "replay.data", i));

  core::CodCluster cluster;
  auto& cbR = cluster.addComputer("replayer");
  auto& cbV = cluster.addComputer("viewer");
  SessionReplayer replayer(rec, /*timeScale=*/1.0);
  replayer.bind(cbR);

  struct Viewer : core::LogicalProcess {
    Viewer() : core::LogicalProcess("viewer") {}
    std::vector<double> values;
    std::vector<double> arrivals;  // cluster time at delivery
    double now = 0.0;
    void reflectAttributeValues(const std::string&, const core::AttributeSet& a,
                                double) override {
      values.push_back(a.getDouble("v"));
      arrivals.push_back(now);
    }
    void step(double t) override { now = t; }
  } viewer;
  cbV.attach(viewer);
  cbV.subscribeObjectClass(viewer, "replay.data");

  cluster.step(4.0);
  EXPECT_TRUE(replayer.finished());
  ASSERT_EQ(viewer.values.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(viewer.values[i], i);
  // Pacing: the last record (1.9 s into the journal) arrives ~1.9 s after
  // the first, not all at once.
  EXPECT_GT(viewer.arrivals.back() - viewer.arrivals.front(), 1.5);
}

TEST(SessionReplayer, TimeScaleSpeedsReplay) {
  Recording rec;
  for (int i = 0; i < 10; ++i) rec.append(makeRecord(0.2 * i, "fast.data", i));
  core::CodCluster cluster;
  auto& cbR = cluster.addComputer("replayer");
  SessionReplayer replayer(rec, /*timeScale=*/4.0);
  replayer.setStartGraceSec(0.0);  // nobody subscribes in this test
  replayer.bind(cbR);
  // 1.8 s of journal at 4x finishes within ~0.5 s of cluster time.
  cluster.step(0.8);
  EXPECT_TRUE(replayer.finished());
}

TEST(SessionReplayer, DrivesTheInstructorMonitor) {
  // Record a synthetic crane.state stream, then replay it into a cluster
  // containing only the instructor monitor: the debrief use case.
  Recording rec;
  for (int i = 0; i < 10; ++i) {
    CraneStateMsg m;
    m.state.slewAngleRad = 0.1 * i;
    m.state.boomLengthM = 10.0 + i;
    m.simTimeSec = 0.1 * i;
    rec.append({0.1 * i, kClassCraneState, encodeCraneState(m)});
  }
  core::CodCluster cluster;
  auto& cbR = cluster.addComputer("replayer");
  auto& cbI = cluster.addComputer("instructor");
  SessionReplayer replayer(rec);
  replayer.bind(cbR);
  InstructorModule instructor;
  instructor.bind(cbI);
  cluster.step(2.5);
  EXPECT_TRUE(replayer.finished());
  EXPECT_EQ(instructor.stateUpdatesSeen(), 10u);
  EXPECT_NEAR(instructor.statusWindow().boomElongationM, 19.0, 1e-9);
}

}  // namespace
}  // namespace cod::sim
