// Tests of the reliable-delivery primitives: send-window / receive-queue
// semantics in isolation, then a soak of the pair over the simulated LAN
// at aggressive loss (the ReliableOrderTest idiom: every frame must come
// out, in order, despite 55% loss and jitter-induced reordering).
#include "net/reliable.hpp"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/cluster.hpp"
#include "net/simnet.hpp"
#include "net/wire.hpp"

namespace cod::net {
namespace {

ReliableFrame frame(std::uint64_t seq) {
  return ReliableFrame{seq, 0.01 * static_cast<double>(seq),
                       {static_cast<std::uint8_t>(seq & 0xFF)}};
}

class ReceiveQueueTest : public ::testing::Test {
 protected:
  ReliableConfig cfg;
  ReliableStats stats;
  std::vector<ReliableFrame> ready;
};

TEST_F(ReceiveQueueTest, InOrderFramesPassStraightThrough) {
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  for (std::uint64_t s = 1; s <= 5; ++s)
    EXPECT_EQ(q.offer(frame(s), ready), ReliableReceiveQueue::Offer::kDelivered);
  ASSERT_EQ(ready.size(), 5u);
  for (std::uint64_t s = 1; s <= 5; ++s) EXPECT_EQ(ready[s - 1].seq, s);
  EXPECT_EQ(q.nextExpected(), 6u);
  EXPECT_EQ(stats.outOfOrderBuffered, 0u);
}

TEST_F(ReceiveQueueTest, GapBuffersUntilHealed) {
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  EXPECT_EQ(q.offer(frame(1), ready), ReliableReceiveQueue::Offer::kDelivered);
  EXPECT_EQ(q.offer(frame(3), ready), ReliableReceiveQueue::Offer::kBuffered);
  EXPECT_EQ(q.offer(frame(4), ready), ReliableReceiveQueue::Offer::kBuffered);
  ASSERT_EQ(ready.size(), 1u);  // 3 and 4 held behind the hole at 2
  EXPECT_EQ(q.offer(frame(2), ready), ReliableReceiveQueue::Offer::kDelivered);
  ASSERT_EQ(ready.size(), 4u);  // 2 healed the gap and released 3, 4
  EXPECT_EQ(ready[1].seq, 2u);
  EXPECT_EQ(ready[2].seq, 3u);
  EXPECT_EQ(ready[3].seq, 4u);
  EXPECT_EQ(stats.gapsHealed, 2u);
}

TEST_F(ReceiveQueueTest, DuplicatesDroppedBothDeliveredAndBuffered) {
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  q.offer(frame(1), ready);
  EXPECT_EQ(q.offer(frame(1), ready), ReliableReceiveQueue::Offer::kDuplicate);
  q.offer(frame(3), ready);
  EXPECT_EQ(q.offer(frame(3), ready), ReliableReceiveQueue::Offer::kDuplicate);
  EXPECT_EQ(stats.duplicatesDropped, 2u);
  EXPECT_EQ(ready.size(), 1u);
}

TEST_F(ReceiveQueueTest, PreBaseFramesHeldUntilBaseArrives) {
  ReliableReceiveQueue q(cfg, stats);
  // Updates raced ahead of the CHANNEL_ACK: nothing may be delivered (a
  // gap below the first-seen frame would be invisible).
  EXPECT_EQ(q.offer(frame(7), ready), ReliableReceiveQueue::Offer::kBuffered);
  EXPECT_EQ(q.offer(frame(6), ready), ReliableReceiveQueue::Offer::kBuffered);
  EXPECT_TRUE(ready.empty());
  EXPECT_TRUE(q.collectNacks(10.0).empty());  // no NACKs before the base
  q.setBase(5, ready);
  // 6 and 7 were buffered but 5 is still missing.
  EXPECT_TRUE(ready.empty());
  q.offer(frame(5), ready);
  ASSERT_EQ(ready.size(), 3u);
  EXPECT_EQ(ready[0].seq, 5u);
  EXPECT_EQ(ready[2].seq, 7u);
}

TEST_F(ReceiveQueueTest, SetBaseDiscardsHistoryBelowIt) {
  ReliableReceiveQueue q(cfg, stats);
  q.offer(frame(3), ready);  // pre-base stray from before our channel
  q.setBase(5, ready);
  EXPECT_TRUE(ready.empty());
  EXPECT_EQ(q.nextExpected(), 5u);
  q.offer(frame(5), ready);
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].seq, 5u);
}

TEST_F(ReceiveQueueTest, NacksListHolesAfterPersistentGap) {
  cfg.nackIntervalSec = 0.05;
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  q.offer(frame(1), ready);
  q.offer(frame(4), ready);
  q.offer(frame(6), ready);
  EXPECT_TRUE(q.collectNacks(0.0).empty());  // gap just appeared
  const auto missing = q.collectNacks(0.1);  // persisted past the interval
  ASSERT_EQ(missing.size(), 3u);
  EXPECT_EQ(missing[0], 2u);
  EXPECT_EQ(missing[1], 3u);
  EXPECT_EQ(missing[2], 5u);
  EXPECT_TRUE(q.collectNacks(0.11).empty());  // paced: too soon to repeat
  EXPECT_FALSE(q.collectNacks(0.2).empty());
  EXPECT_EQ(stats.nacksSent, 2u);
}

TEST_F(ReceiveQueueTest, FreshHoleAgesBeforeBeingNacked) {
  // A hole opened while an older gap is outstanding must still get the
  // full jitter-healing grace before it is NACKed — otherwise a merely
  // reordered in-flight frame is retransmitted for nothing.
  cfg.nackIntervalSec = 0.05;
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  q.offer(frame(1), ready);
  q.offer(frame(3), ready);  // hole at 2
  EXPECT_TRUE(q.collectNacks(0.0).empty());  // too fresh
  q.offer(frame(6), ready);  // new holes at 4, 5 while 2 is still open
  const auto first = q.collectNacks(0.06);
  ASSERT_EQ(first.size(), 1u);  // only the aged hole goes out
  EXPECT_EQ(first[0], 2u);
  q.offer(frame(2), ready);  // 2 heals (delivers 2 and 3)
  const auto second = q.collectNacks(0.12);
  ASSERT_EQ(second.size(), 2u);  // 4 and 5 have aged by now
  EXPECT_EQ(second[0], 4u);
  EXPECT_EQ(second[1], 5u);
}

TEST_F(ReceiveQueueTest, AckDueAfterProgressAndAfterDuplicates) {
  cfg.ackIntervalSec = 0.1;
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  EXPECT_TRUE(q.collectAck(0.0).has_value());  // announces the base
  q.offer(frame(1), ready);
  EXPECT_FALSE(q.collectAck(0.05).has_value());  // interval not elapsed
  const auto ack = q.collectAck(0.2);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(*ack, 1u);
  EXPECT_FALSE(q.collectAck(0.4).has_value());  // nothing new to report
  // A duplicate means the sender missed our ack: re-arm it.
  q.offer(frame(1), ready);
  const auto reack = q.collectAck(0.6);
  ASSERT_TRUE(reack.has_value());
  EXPECT_EQ(*reack, 1u);
}

TEST_F(ReceiveQueueTest, AbandonSkipsHolesButDeliversBufferedFrames) {
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  q.offer(frame(1), ready);
  q.offer(frame(3), ready);  // 2 lost and (say) evicted at the sender
  ready.clear();
  EXPECT_EQ(q.abandonThrough(2, ready), 1u);  // only 2 is truly gone
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].seq, 3u);
  EXPECT_EQ(q.nextExpected(), 4u);
  EXPECT_EQ(stats.gapsAbandoned, 1u);
}

TEST_F(ReceiveQueueTest, PiggybackAckIgnoresPacingAndAbsorbsPeriodicAck) {
  cfg.ackIntervalSec = 0.1;
  ReliableReceiveQueue q(cfg, stats);
  EXPECT_FALSE(q.piggybackAck(0.0).has_value());  // base still unknown
  q.setBase(1, ready);
  q.offer(frame(1), ready);
  // Riding a departing keep-alive costs nothing, so the pacing interval
  // does not apply…
  const auto pig = q.piggybackAck(0.01);
  ASSERT_TRUE(pig.has_value());
  EXPECT_EQ(*pig, 1u);
  // …and the periodic ack it replaced is absorbed, not duplicated.
  EXPECT_FALSE(q.collectAck(0.2).has_value());
  // New progress re-arms the normal path.
  q.offer(frame(2), ready);
  EXPECT_TRUE(q.collectAck(0.5).has_value());
}

TEST_F(ReceiveQueueTest, ReorderLimitDropsOverflow) {
  cfg.reorderLimit = 4;
  ReliableReceiveQueue q(cfg, stats);
  q.setBase(1, ready);
  for (std::uint64_t s = 2; s <= 5; ++s) q.offer(frame(s), ready);
  EXPECT_EQ(q.offer(frame(6), ready), ReliableReceiveQueue::Offer::kOverflow);
  EXPECT_EQ(stats.reorderOverflows, 1u);
  EXPECT_EQ(q.buffered(), 4u);
}

class SendWindowTest : public ::testing::Test {
 protected:
  ReliableConfig cfg;
  ReliableStats stats;
};

TEST_F(SendWindowTest, StoresAndPrunesCumulatively) {
  ReliableSendWindow w(cfg, stats);
  for (std::uint64_t s = 1; s <= 10; ++s) w.store(s, {0x55}, 0.0);
  EXPECT_EQ(w.size(), 10u);
  ASSERT_NE(w.frame(3), nullptr);
  w.pruneThrough(7);
  EXPECT_EQ(w.size(), 3u);
  EXPECT_EQ(w.frame(7), nullptr);
  ASSERT_NE(w.frame(8), nullptr);
  EXPECT_EQ(stats.framesPruned, 7u);
}

TEST_F(SendWindowTest, OverflowEvictsOldestAndRecordsHighWaterMark) {
  cfg.sendWindowFrames = 4;
  ReliableSendWindow w(cfg, stats);
  for (std::uint64_t s = 1; s <= 6; ++s) w.store(s, {0x55}, 0.0);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.frame(1), nullptr);
  EXPECT_EQ(w.frame(2), nullptr);
  EXPECT_EQ(w.highestEvicted(), 2u);
  EXPECT_EQ(stats.sendWindowEvictions, 2u);
}

TEST_F(SendWindowTest, ByteBudgetEvictsOldestBeyondBytes) {
  cfg.sendWindowBytes = 64;
  ReliableSendWindow w(cfg, stats);
  for (std::uint64_t s = 1; s <= 8; ++s)
    w.store(s, std::vector<std::uint8_t>(16, 0xAA), 0.0);
  EXPECT_LE(w.bytesBuffered(), 64u);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.frame(4), nullptr);
  ASSERT_NE(w.frame(5), nullptr);
  EXPECT_EQ(w.highestEvicted(), 4u);
  EXPECT_EQ(stats.sendWindowEvictions, 4u);
}

TEST_F(SendWindowTest, OversizedFrameAloneSurvivesTheBudget) {
  // A frame bigger than the whole budget must not evict itself — the
  // stream keeps making progress on exactly one buffered frame.
  cfg.sendWindowBytes = 8;
  ReliableSendWindow w(cfg, stats);
  w.store(1, std::vector<std::uint8_t>(32, 0x11), 0.0);
  EXPECT_EQ(w.size(), 1u);
  ASSERT_NE(w.frame(1), nullptr);
  w.store(2, std::vector<std::uint8_t>(32, 0x22), 0.0);
  EXPECT_EQ(w.size(), 1u);
  EXPECT_EQ(w.frame(1), nullptr);
  ASSERT_NE(w.frame(2), nullptr);
  EXPECT_EQ(w.highestEvicted(), 1u);
}

TEST_F(SendWindowTest, WouldOverflowChecksFrameCapAndByteBudget) {
  cfg.sendWindowFrames = 2;
  cfg.sendWindowBytes = 40;
  ReliableSendWindow w(cfg, stats);
  EXPECT_FALSE(w.wouldOverflow(16));
  w.store(1, std::vector<std::uint8_t>(16, 0x11), 0.0);
  EXPECT_FALSE(w.wouldOverflow(16));  // 32 <= 40, 2 frames <= cap
  EXPECT_TRUE(w.wouldOverflow(32));   // 48 > 40: byte budget
  w.store(2, std::vector<std::uint8_t>(16, 0x22), 0.0);
  EXPECT_TRUE(w.wouldOverflow(1));  // 3 frames > cap of 2
  // Acks free capacity again — the block is a state, not a verdict.
  w.pruneThrough(1);
  EXPECT_FALSE(w.wouldOverflow(16));
}

TEST_F(SendWindowTest, OverflowPolicyDefaultsFromConfigAndOverrides) {
  cfg.overflowPolicy = OverflowPolicy::kBlockPublisher;
  ReliableSendWindow w(cfg, stats);
  EXPECT_EQ(w.overflowPolicy(), OverflowPolicy::kBlockPublisher);
  w.setOverflowPolicy(OverflowPolicy::kDegradeLatestValue);
  EXPECT_EQ(w.overflowPolicy(), OverflowPolicy::kDegradeLatestValue);
  // The policy names are part of the operator-facing report grammar.
  EXPECT_STREQ(overflowPolicyName(OverflowPolicy::kEvictOldest),
               "evict-oldest");
  EXPECT_STREQ(overflowPolicyName(OverflowPolicy::kBlockPublisher),
               "block-publisher");
  EXPECT_STREQ(overflowPolicyName(OverflowPolicy::kDegradeLatestValue),
               "degrade-latest-value");
}

TEST_F(SendWindowTest, ByteAccountingTracksPruneAndClear) {
  cfg.sendWindowBytes = 1024;
  ReliableSendWindow w(cfg, stats);
  for (std::uint64_t s = 1; s <= 4; ++s)
    w.store(s, std::vector<std::uint8_t>(10, 0x33), 0.0);
  EXPECT_EQ(w.bytesBuffered(), 40u);
  w.pruneThrough(2);
  EXPECT_EQ(w.bytesBuffered(), 20u);
  w.clear();
  EXPECT_EQ(w.bytesBuffered(), 0u);
  EXPECT_TRUE(w.empty());
}

TEST_F(SendWindowTest, StoredSeqsAboveSeedSplitWindows) {
  ReliableSendWindow w(cfg, stats);
  for (std::uint64_t s = 3; s <= 7; ++s) w.store(s, {0x55}, 0.0);
  EXPECT_EQ(w.lowestStored(), 3u);
  const auto above = w.storedSeqsAbove(4);
  ASSERT_EQ(above.size(), 3u);
  EXPECT_EQ(above[0], 5u);
  EXPECT_EQ(above[2], 7u);
  EXPECT_TRUE(w.storedSeqsAbove(7).empty());
}

TEST_F(SendWindowTest, TailRetransmitsHonourTimeoutAndAcks) {
  cfg.retxTimeoutSec = 0.25;
  cfg.maxRetransmitPerSweep = 2;
  ReliableSendWindow w(cfg, stats);
  for (std::uint64_t s = 1; s <= 4; ++s) w.store(s, {0x55}, 0.0);
  EXPECT_TRUE(w.takeTailRetransmits(1, 0.1).empty());  // too fresh
  // Frames below minUnacked (acked everywhere) are skipped.
  auto due = w.takeTailRetransmits(3, 0.3);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0], 3u);
  EXPECT_EQ(due[1], 4u);
  // The sweep restarted their timers.
  EXPECT_TRUE(w.takeTailRetransmits(3, 0.4).empty());
  EXPECT_FALSE(w.takeTailRetransmits(3, 0.6).empty());
}

// ---- Soak: the pair over a lossy, jittery simulated LAN -----------------
//
// A toy sender/receiver speak a minimal 4-type framing over SimNetwork,
// wired to the window/queue exactly the way the CB is. 55% loss matches
// the exemplar ReliableOrderTest; jitter makes even surviving packets
// arrive out of order.

constexpr std::uint8_t kData = 1;
constexpr std::uint8_t kNackFrame = 2;
constexpr std::uint8_t kAckFrame = 3;

struct ToySender {
  SimTransport* t = nullptr;
  NodeAddr peer;
  ReliableSendWindow window;
  std::uint64_t nextSeq = 1;

  ToySender(const ReliableConfig& cfg, ReliableStats& stats, SimTransport* tr,
            NodeAddr p)
      : t(tr), peer(p), window(cfg, stats) {}

  void send(double now) {
    WireWriter w;
    w.u8(kData);
    w.u64(nextSeq);
    w.f64(now);
    w.u64(nextSeq * 31);  // payload the receiver can check
    window.store(nextSeq, w.bytes(), now);
    t->send(peer, w.bytes());
    ++nextSeq;
  }

  void pump(double now, std::uint64_t& cumAcked) {
    while (auto d = t->receive()) {
      WireReader r(d->payload);
      const auto type = r.u8();
      if (!type) continue;
      if (*type == kNackFrame) {
        const auto count = r.u16();
        for (std::uint16_t i = 0; count && i < *count; ++i) {
          const auto seq = r.u64();
          if (!seq) break;
          if (auto* f = window.frame(*seq)) {
            t->send(peer, *f);
            window.markSent(*seq, now);
          }
        }
      } else if (*type == kAckFrame) {
        const auto cum = r.u64();
        if (cum) {
          cumAcked = std::max(cumAcked, *cum);
          window.pruneThrough(*cum);
        }
      }
    }
    for (const std::uint64_t seq :
         window.takeTailRetransmits(cumAcked + 1, now)) {
      if (auto* f = window.frame(seq)) t->send(peer, *f);
    }
  }
};

struct ToyReceiver {
  SimTransport* t = nullptr;
  NodeAddr peer;
  ReliableReceiveQueue queue;
  std::vector<std::uint64_t> delivered;

  ToyReceiver(const ReliableConfig& cfg, ReliableStats& stats, SimTransport* tr,
              NodeAddr p)
      : t(tr), peer(p), queue(cfg, stats) {
    std::vector<ReliableFrame> none;
    queue.setBase(1, none);
  }

  void pump(double now) {
    std::vector<ReliableFrame> ready;
    while (auto d = t->receive()) {
      WireReader r(d->payload);
      const auto type = r.u8();
      const auto seq = r.u64();
      const auto ts = r.f64();
      const auto body = r.u64();
      if (!type || *type != kData || !seq || !ts || !body) continue;
      EXPECT_EQ(*body, *seq * 31);  // payload integrity through retransmits
      queue.offer(ReliableFrame{*seq, *ts, {}}, ready);
    }
    for (const ReliableFrame& f : ready) delivered.push_back(f.seq);
    const auto missing = queue.collectNacks(now);
    if (!missing.empty()) {
      WireWriter w;
      w.u8(kNackFrame);
      w.u16(static_cast<std::uint16_t>(missing.size()));
      for (const std::uint64_t s : missing) w.u64(s);
      t->send(peer, w.bytes());
    }
    if (const auto cum = queue.collectAck(now)) {
      WireWriter w;
      w.u8(kAckFrame);
      w.u64(*cum);
      t->send(peer, w.bytes());
    }
  }
};

void runSoak(double lossRate, double jitterSec, int numSends,
             std::uint64_t seed) {
  SimNetwork net(seed);
  const HostId a = net.addHost("sender");
  const HostId b = net.addHost("receiver");
  LinkModel link;
  link.lossRate = lossRate;
  link.jitterSec = jitterSec;
  net.setDefaultLink(link);
  auto ta = net.bind(a, 1);
  auto tb = net.bind(b, 1);

  ReliableConfig cfg;
  ReliableStats stats;
  ToySender sender(cfg, stats, ta.get(), {b, 1});
  ToyReceiver receiver(cfg, stats, tb.get(), {a, 1});

  std::uint64_t cumAcked = 0;
  int sent = 0;
  double now = 0.0;
  const double dt = 0.01;
  // Send phase, then drain until everything is recovered.
  while (receiver.delivered.size() < static_cast<std::size_t>(numSends)) {
    if (sent < numSends) {
      sender.send(now);
      ++sent;
    }
    net.advance(dt);
    now = net.now();
    receiver.pump(now);
    sender.pump(now, cumAcked);
    ASSERT_LT(now, 120.0) << "soak did not converge: delivered "
                          << receiver.delivered.size() << "/" << numSends;
  }

  // Zero gaps, strict order.
  ASSERT_EQ(receiver.delivered.size(), static_cast<std::size_t>(numSends));
  for (int i = 0; i < numSends; ++i)
    ASSERT_EQ(receiver.delivered[static_cast<std::size_t>(i)],
              static_cast<std::uint64_t>(i) + 1);
  if (lossRate > 0.0) {
    EXPECT_GT(stats.retransmitsSent, 0u);
    EXPECT_GT(stats.nacksSent, 0u);
  }
  EXPECT_EQ(stats.gapsAbandoned, 0u);
}

// ---- Control-datagram reduction on quiet reliable links -----------------
//
// PR-2 follow-on: WINDOW_ACK/NACK piggyback on heartbeat flushes. With the
// CB's send coalescer on, every control frame a tick owes a peer
// (heartbeats for all channels, piggybacked acks) rides one datagram, so a
// quiet multi-channel reliable link sends a fraction of the datagrams the
// un-batched protocol needs.

std::uint64_t quietReliableLinkDatagrams(bool batching) {
  core::CodCluster::Config cfg;
  cfg.cb.batch.enabled = batching;
  core::CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("pub");
  auto& cbB = cluster.addComputer("sub");
  core::LogicalProcess pub{"pub"};
  core::LogicalProcess sub{"sub"};
  cbA.attach(pub);
  cbB.attach(sub);
  const char* classes[3] = {"rel.a", "rel.b", "rel.c"};
  std::vector<core::PublicationHandle> pubs;
  std::vector<core::SubscriptionHandle> subs;
  for (const char* cls : classes) {
    pubs.push_back(
        cbA.publishObjectClass(pub, cls, QosClass::kReliableOrdered));
    subs.push_back(
        cbB.subscribeObjectClass(sub, cls, QosClass::kReliableOrdered));
  }
  EXPECT_TRUE(cluster.runUntil(
      [&] {
        for (const auto s : subs)
          if (!cbB.connected(s)) return false;
        return true;
      },
      5.0));
  // A short burst gives the reliable machinery progress to acknowledge.
  core::AttributeSet attrs;
  attrs.set("v", 1.0);
  for (int i = 0; i < 5; ++i) {
    for (const auto h : pubs) cbA.updateAttributeValues(h, attrs, cluster.now());
    cluster.step(0.01);
  }
  const auto before = cluster.network().stats().packetsSent;
  cluster.step(10.0);  // quiet: heartbeats, refresh broadcasts, acks
  return cluster.network().stats().packetsSent - before;
}

TEST(ReliableControlTraffic, BatchingCutsQuietLinkControlDatagrams) {
  const std::uint64_t batched = quietReliableLinkDatagrams(true);
  const std::uint64_t unbatched = quietReliableLinkDatagrams(false);
  ASSERT_GT(unbatched, 0u);
  // At three reliable channels the coalesced protocol should need well
  // under two-thirds of the control datagrams (measured ~0.45x).
  EXPECT_LT(batched * 3, unbatched * 2)
      << "batched=" << batched << " unbatched=" << unbatched;
}

TEST(ReliableSoak, AllFramesInOrderAt25PercentLoss) {
  runSoak(0.25, 500e-6, 400, 11);
}

TEST(ReliableSoak, AllFramesInOrderAt55PercentLoss) {
  runSoak(0.55, 500e-6, 250, 7);
}

TEST(ReliableSoak, JitterOnlyReorderingHealsWithoutAbandonment) {
  runSoak(0.0, 5e-3, 300, 3);
}

}  // namespace
}  // namespace cod::net
