// Tests of the Communication Backbone protocol over the simulated LAN.
#include "core/cluster.hpp"

#include <gtest/gtest.h>

namespace cod::core {
namespace {

/// Minimal publisher LP.
class Pub : public LogicalProcess {
 public:
  explicit Pub(std::string cls) : LogicalProcess("pub"), cls_(std::move(cls)) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.publishObjectClass(*this, cls_);
  }
  void send(double value, double ts) {
    AttributeSet a;
    a.set("v", value);
    backbone()->updateAttributeValues(handle, a, ts);
  }
  PublicationHandle handle = kInvalidHandle;

 private:
  std::string cls_;
};

/// Minimal subscriber LP recording everything it reflects.
class Sub : public LogicalProcess {
 public:
  explicit Sub(std::string cls) : LogicalProcess("sub"), cls_(std::move(cls)) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.subscribeObjectClass(*this, cls_);
  }
  void reflectAttributeValues(const std::string& className,
                              const AttributeSet& attrs,
                              double timestamp) override {
    classNames.push_back(className);
    values.push_back(attrs.getDouble("v"));
    timestamps.push_back(timestamp);
  }
  SubscriptionHandle handle = kInvalidHandle;
  std::vector<std::string> classNames;
  std::vector<double> values;
  std::vector<double> timestamps;

 private:
  std::string cls_;
};

class CbTest : public ::testing::Test {
 protected:
  CodCluster cluster;
};

TEST_F(CbTest, DiscoveryEstablishesChannel) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("demo");
  pub.bind(cbA);
  Sub sub("demo");
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0));
  EXPECT_EQ(cbA.channelCount(pub.handle), 1u);
  EXPECT_EQ(cbB.sourceCount(sub.handle), 1u);
  EXPECT_GE(cbB.stats().broadcastsSent, 1u);
  EXPECT_GE(cbA.stats().acknowledgesSent, 1u);
}

TEST_F(CbTest, UpdatesFlowInOrderWithTimestamps) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("demo");
  pub.bind(cbA);
  Sub sub("demo");
  sub.bind(cbB);
  cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  for (int i = 0; i < 20; ++i) pub.send(i, 0.1 * i);
  cluster.step(0.1);
  ASSERT_EQ(sub.values.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(sub.values[i], i);
    EXPECT_DOUBLE_EQ(sub.timestamps[i], 0.1 * i);
    EXPECT_EQ(sub.classNames[i], "demo");
  }
}

TEST_F(CbTest, SubscriberBeforePublisherConnects) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Sub sub("late");
  sub.bind(cbB);
  cluster.step(0.5);  // subscriber broadcasts into the void for a while
  EXPECT_FALSE(cbB.connected(sub.handle));
  Pub pub("late");
  pub.bind(cbA);  // publisher joins late (dynamic join, §2.3)
  EXPECT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); },
                               cluster.now() + 3.0));
}

TEST_F(CbTest, PublisherBeforeSubscriberConnects) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("early");
  pub.bind(cbA);
  cluster.step(0.5);
  Sub sub("early");
  sub.bind(cbB);
  EXPECT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); },
                               cluster.now() + 2.0));
}

TEST_F(CbTest, ClassNamesIsolateTraffic) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("alpha");
  pub.bind(cbA);
  Sub rightSub("alpha");
  rightSub.bind(cbB);
  Sub wrongSub("beta");
  wrongSub.bind(cbB);
  cluster.runUntil([&] { return cbB.connected(rightSub.handle); }, 2.0);
  pub.send(1.0, 0.0);
  cluster.step(0.1);
  EXPECT_EQ(rightSub.values.size(), 1u);
  EXPECT_TRUE(wrongSub.values.empty());
  EXPECT_FALSE(cbB.connected(wrongSub.handle));
}

TEST_F(CbTest, MultipleSubscribersFanOut) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  auto& cbC = cluster.addComputer("c");
  Pub pub("fan");
  pub.bind(cbA);
  Sub s1("fan"), s2("fan");
  s1.bind(cbB);
  s2.bind(cbC);
  cluster.runUntil(
      [&] { return cbB.connected(s1.handle) && cbC.connected(s2.handle); },
      3.0);
  EXPECT_EQ(cbA.channelCount(pub.handle), 2u);
  pub.send(5.0, 1.0);
  cluster.step(0.1);
  EXPECT_EQ(s1.values.size(), 1u);
  EXPECT_EQ(s2.values.size(), 1u);
}

TEST_F(CbTest, MultiplePublishersFanIn) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  auto& cbC = cluster.addComputer("c");
  Pub p1("multi"), p2("multi");
  p1.bind(cbA);
  p2.bind(cbB);
  Sub sub("multi");
  sub.bind(cbC);
  cluster.runUntil([&] { return cbC.sourceCount(sub.handle) == 2; }, 3.0);
  p1.send(1.0, 0.0);
  p2.send(2.0, 0.0);
  cluster.step(0.1);
  EXPECT_EQ(sub.values.size(), 2u);
}

TEST_F(CbTest, LocalFastPathSameComputer) {
  auto& cb = cluster.addComputer("solo");
  Pub pub("local");
  pub.bind(cb);
  Sub sub("local");
  sub.bind(cb);
  // No network round trip needed: deliver on the next tick.
  pub.send(9.0, 0.0);
  cluster.step(0.01);
  ASSERT_EQ(sub.values.size(), 1u);
  EXPECT_DOUBLE_EQ(sub.values[0], 9.0);
  EXPECT_EQ(cb.stats().updatesLocalFastPath, 1u);
  EXPECT_EQ(cb.stats().updatesSent, 0u);  // nothing left the computer
}

TEST_F(CbTest, LocalDeliveryWithFastPathDisabledUsesProtocol) {
  CodCluster::Config cfg;
  cfg.cb.localFastPath = false;
  CodCluster c2(cfg);
  auto& cb = c2.addComputer("solo");
  Pub pub("local");
  pub.bind(cb);
  Sub sub("local");
  sub.bind(cb);
  ASSERT_TRUE(c2.runUntil([&] { return cb.connected(sub.handle); }, 2.0));
  pub.send(4.0, 0.0);
  c2.step(0.1);
  ASSERT_EQ(sub.values.size(), 1u);
  EXPECT_EQ(cb.stats().updatesLocalFastPath, 0u);
  EXPECT_GE(cb.stats().updatesSent, 1u);  // went through the socket
}

TEST_F(CbTest, PullModelPollAndLatest) {
  CodCluster::Config cfg;
  cfg.cb.pushDelivery = false;  // pure pull
  CodCluster c2(cfg);
  auto& cbA = c2.addComputer("a");
  auto& cbB = c2.addComputer("b");
  Pub pub("pull");
  pub.bind(cbA);
  Sub sub("pull");
  sub.bind(cbB);
  c2.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  pub.send(1.0, 0.0);
  pub.send(2.0, 0.1);
  c2.step(0.1);
  EXPECT_TRUE(sub.values.empty());  // nothing pushed
  EXPECT_EQ(cbB.pending(sub.handle), 2u);
  const Reflection* latest = cbB.latest(sub.handle);
  ASSERT_NE(latest, nullptr);
  EXPECT_DOUBLE_EQ(latest->attrs.getDouble("v"), 2.0);
  const auto first = cbB.poll(sub.handle);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->attrs.getDouble("v"), 1.0);
  EXPECT_EQ(cbB.pending(sub.handle), 1u);
}

TEST_F(CbTest, UnsubscribeTearsDownBothSides) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("bye");
  pub.bind(cbA);
  Sub sub("bye");
  sub.bind(cbB);
  cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  cbB.unsubscribe(sub.handle);
  cluster.step(0.1);  // let the BYE propagate
  EXPECT_EQ(cbA.channelCount(pub.handle), 0u);
  pub.send(1.0, 0.0);
  cluster.step(0.1);
  EXPECT_TRUE(sub.values.empty());
}

TEST_F(CbTest, UnpublishNotifiesSubscriber) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("gone");
  pub.bind(cbA);
  Sub sub("gone");
  sub.bind(cbB);
  cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  cbA.unpublish(pub.handle);
  cluster.step(0.1);
  EXPECT_EQ(cbB.sourceCount(sub.handle), 0u);
}

TEST_F(CbTest, DetachResignsAllRegistrations) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Sub sub("multi");
  sub.bind(cbB);
  {
    Pub pub("multi");
    pub.bind(cbA);
    cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
    EXPECT_EQ(cbA.lpCount(), 1u);
  }  // pub destroyed → detached → unpublished
  EXPECT_EQ(cbA.lpCount(), 0u);
  cluster.step(0.1);
  EXPECT_EQ(cbB.sourceCount(sub.handle), 0u);
}

TEST_F(CbTest, ChannelSurvivesWellBeyondTimeout) {
  // Regression for the channel-id role collision: a CB that both publishes
  // and subscribes used to mis-route keep-alives, and its channels died at
  // the timeout. Run an idle (no-update) channel for several timeouts.
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  // Both computers publish one class and subscribe to the other's.
  Pub pubA("a.out");
  pubA.bind(cbA);
  Sub subA("b.out");
  subA.bind(cbA);
  Pub pubB("b.out");
  pubB.bind(cbB);
  Sub subB("a.out");
  subB.bind(cbB);
  cluster.runUntil(
      [&] { return cbA.connected(subA.handle) && cbB.connected(subB.handle); },
      3.0);
  const double horizon =
      cluster.now() + 4.0 * cbA.config().channelTimeoutSec;
  while (cluster.now() < horizon) cluster.step(0.25);
  EXPECT_EQ(cbA.stats().channelsTimedOut, 0u);
  EXPECT_EQ(cbB.stats().channelsTimedOut, 0u);
  pubA.send(1.0, 0.0);
  pubB.send(2.0, 0.0);
  cluster.step(0.1);
  EXPECT_EQ(subA.values.size(), 1u);
  EXPECT_EQ(subB.values.size(), 1u);
}

TEST_F(CbTest, PartitionTimesOutAndReconnects) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("part");
  pub.bind(cbA);
  Sub sub("part");
  sub.bind(cbB);
  cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  cluster.network().setPartitioned(0, 1, true);
  // Everything times out across the partition.
  cluster.step(cbA.config().channelTimeoutSec + 1.0);
  EXPECT_EQ(cbB.sourceCount(sub.handle), 0u);
  EXPECT_GE(cbB.stats().channelsTimedOut, 1u);
  // Heal: discovery resumes and the channel comes back.
  cluster.network().setPartitioned(0, 1, false);
  EXPECT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); },
                               cluster.now() + 5.0));
  pub.send(3.0, 0.0);
  cluster.step(0.1);
  EXPECT_EQ(sub.values.size(), 1u);
}

TEST_F(CbTest, LossyLinkStillConnectsAndDedups) {
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.2;
  CodCluster c2(cfg);
  auto& cbA = c2.addComputer("a");
  auto& cbB = c2.addComputer("b");
  Pub pub("lossy");
  pub.bind(cbA);
  Sub sub("lossy");
  sub.bind(cbB);
  // Retransmits make discovery succeed despite 20% loss.
  ASSERT_TRUE(c2.runUntil([&] { return cbB.connected(sub.handle); }, 10.0));
  // One update per tick, so each leaves in its own datagram and the 20%
  // loss applies per update (a single-burst send would coalesce into a
  // handful of batch datagrams and make the loss all-or-nothing per batch).
  for (int i = 0; i < 100; ++i) {
    pub.send(i, 0.01 * i);
    c2.step(0.005);
  }
  c2.step(0.5);
  // Some updates are lost (no retransmit for data), none duplicated, and
  // the sequence observed is strictly increasing.
  EXPECT_LE(sub.values.size(), 100u);
  EXPECT_GT(sub.values.size(), 50u);
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);
}

TEST_F(CbTest, MailboxOverflowDropsOldest) {
  CodCluster::Config cfg;
  cfg.cb.pushDelivery = false;
  cfg.cb.mailboxLimit = 5;
  CodCluster c2(cfg);
  auto& cbA = c2.addComputer("a");
  auto& cbB = c2.addComputer("b");
  Pub pub("flood");
  pub.bind(cbA);
  Sub sub("flood");
  sub.bind(cbB);
  c2.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  for (int i = 0; i < 20; ++i) pub.send(i, 0.0);
  c2.step(0.2);
  EXPECT_EQ(cbB.pending(sub.handle), 5u);
  const auto first = cbB.poll(sub.handle);
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->attrs.getDouble("v"), 15.0);  // oldest kept
  EXPECT_GE(cbB.stats().mailboxOverflows, 15u);
}

TEST_F(CbTest, AttachIsIdempotentAndExclusive) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  Pub pub("x");
  pub.bind(cbA);
  EXPECT_EQ(cbA.attach(pub), pub.id());  // second attach: same id
  EXPECT_THROW(cbB.attach(pub), std::logic_error);
}

TEST_F(CbTest, UpdateOnUnknownPublicationThrows) {
  auto& cb = cluster.addComputer("a");
  AttributeSet a;
  EXPECT_THROW(cb.updateAttributeValues(12345, a, 0.0), std::invalid_argument);
}

TEST_F(CbTest, PaperLiteralModeStopsBroadcastingAfterAck) {
  CodCluster::Config cfg;
  cfg.cb.refreshIntervalSec = 0.0;  // §2.3 literal: stop after first ACK
  CodCluster c2(cfg);
  auto& cbA = c2.addComputer("a");
  auto& cbB = c2.addComputer("b");
  Pub pub("once");
  pub.bind(cbA);
  Sub sub("once");
  sub.bind(cbB);
  c2.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  const auto broadcastsAtConnect = cbB.stats().broadcastsSent;
  c2.step(5.0);
  EXPECT_EQ(cbB.stats().broadcastsSent, broadcastsAtConnect);
}

TEST_F(CbTest, RefreshModeKeepsDiscoveringLatePublishers) {
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  auto& cbC = cluster.addComputer("c");
  Pub p1("refresh");
  p1.bind(cbA);
  Sub sub("refresh");
  sub.bind(cbB);
  cluster.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
  // A second publisher appears after the subscription is satisfied.
  Pub p2("refresh");
  p2.bind(cbC);
  EXPECT_TRUE(cluster.runUntil(
      [&] { return cbB.sourceCount(sub.handle) == 2; }, cluster.now() + 5.0));
}

TEST_F(CbTest, MalformedDatagramsAreCountedAndIgnored) {
  auto& cbA = cluster.addComputer("a");
  cluster.addComputer("b");
  // Inject garbage straight at cbA's port.
  auto rogue = cluster.network().bind(1, 2);
  rogue->send(cbA.address(), std::vector<std::uint8_t>{0xFF, 0x00, 0x13});
  cluster.step(0.1);
  EXPECT_EQ(cbA.stats().malformedDrops, 1u);
}

TEST_F(CbTest, NullTransportRejected) {
  EXPECT_THROW(CommunicationBackbone("x", nullptr), std::invalid_argument);
}

TEST_F(CbTest, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    CodCluster::Config cfg;
    cfg.seed = seed;
    cfg.link.jitterSec = 100e-6;
    CodCluster c(cfg);
    auto& cbA = c.addComputer("a");
    auto& cbB = c.addComputer("b");
    Pub pub("det");
    pub.bind(cbA);
    Sub sub("det");
    sub.bind(cbB);
    c.runUntil([&] { return cbB.connected(sub.handle); }, 2.0);
    for (int i = 0; i < 50; ++i) pub.send(i, 0.01 * i);
    c.step(0.5);
    return std::make_pair(sub.values.size(), cbB.stats().updatesDelivered);
  };
  EXPECT_EQ(run(77), run(77));
}

}  // namespace
}  // namespace cod::core
