#include "physics/pendulum.hpp"

#include <gtest/gtest.h>

#include "physics/integrator.hpp"

namespace cod::physics {
namespace {

TEST(Pendulum, RestsAtEquilibrium) {
  CablePendulum p;
  p.reset({0, 0, 10}, 4.0);
  for (int i = 0; i < 1000; ++i) p.step(0.01);
  EXPECT_NEAR(p.swingAngle(), 0.0, 1e-9);
  EXPECT_EQ(p.bobPosition(), math::Vec3(0, 0, 6));
  EXPECT_TRUE(p.atRest());
}

TEST(Pendulum, CableStaysAtLength) {
  CableParams params;
  params.dampingRate = 0.0;
  CablePendulum p(params);
  p.reset({0, 0, 10}, 5.0);
  // Kick it hard and verify the constraint through the swing.
  p.setPivot({0.5, 0, 10});
  for (int i = 0; i < 2000; ++i) {
    p.step(0.005);
    EXPECT_NEAR((p.bobPosition() - p.pivot()).norm(), 5.0, 1e-9) << i;
  }
}

TEST(Pendulum, PivotMotionInducesSwing) {
  CablePendulum p;
  p.reset({0, 0, 10}, 4.0);
  // Move the pivot steadily (boom slewing), then stop.
  for (int i = 0; i < 100; ++i) {
    p.setPivot({0.02 * i, 0, 10});
    p.step(0.01);
  }
  // Hook lags behind the pivot: it is swinging.
  EXPECT_GT(p.swingAngle(), 0.01);
  EXPECT_GT(p.energy(), 0.0);
}

TEST(Pendulum, OscillatesUntilFullStopAfterBoomStops) {
  // §3.6: "the cable is oscillated until a full stop."
  CablePendulum p;
  p.reset({0, 0, 10}, 4.0);
  for (int i = 0; i < 150; ++i) {
    p.setPivot({0.03 * i, 0, 10});
    p.step(0.01);
  }
  const double swingAtStop = p.swingAngle();
  EXPECT_GT(swingAtStop, 0.02);
  // Boom halted: damping must bring the hook to rest eventually.
  int steps = 0;
  while (!p.atRest() && steps < 200000) {
    p.step(0.01);
    ++steps;
  }
  EXPECT_TRUE(p.atRest()) << "swing=" << p.swingAngle();
}

TEST(Pendulum, EnergyDecaysUnderDamping) {
  CableParams params;
  params.dampingRate = 0.3;
  CablePendulum p(params);
  p.reset({0, 0, 10}, 4.0);
  for (int i = 0; i < 80; ++i) {
    p.setPivot({0.04 * i, 0, 10});
    p.step(0.01);
  }
  // Sample energy once per (approximate) period so the potential/kinetic
  // exchange inside a cycle does not mask the decay.
  const double period = 2 * math::kPi * std::sqrt(4.0 / 9.80665);
  double prev = p.energy();
  for (int cycle = 0; cycle < 5; ++cycle) {
    for (double t = 0; t < period; t += 0.01) p.step(0.01);
    const double e = p.energy();
    EXPECT_LT(e, prev) << "cycle " << cycle;
    prev = e;
  }
}

/// Small-angle period must match 2*pi*sqrt(L/g) across cable lengths.
class PendulumPeriod : public ::testing::TestWithParam<double> {};

TEST_P(PendulumPeriod, MatchesAnalyticSmallAngle) {
  const double length = GetParam();
  CableParams params;
  params.dampingRate = 0.0;
  CablePendulum p(params);
  p.reset({0, 0, 20}, length);
  // Displace by 2 degrees and release.
  const double theta0 = math::deg2rad(2.0);
  CablePendulum q(params);
  q.reset({0, 0, 20}, length);
  q.setPivot({0, 0, 20});
  // Start from a displaced position: re-seat the bob by nudging the pivot
  // once, then measuring zero crossings of x.
  CablePendulum r(params);
  r.reset({-std::sin(theta0) * length, 0, 20}, length);
  r.setPivot({0, 0, 20});  // pivot jumps; bob now hangs at angle theta0
  const double dt = 0.001;
  // Find two successive zero crossings of bob x → half period.
  double prevX = r.bobPosition().x;
  double firstCross = -1, secondCross = -1;
  for (double t = dt; t < 60.0; t += dt) {
    r.step(dt);
    const double x = r.bobPosition().x;
    if (prevX < 0 && x >= 0) {
      if (firstCross < 0) {
        firstCross = t;
      } else {
        secondCross = t;
        break;
      }
    }
    prevX = x;
  }
  ASSERT_GT(firstCross, 0);
  ASSERT_GT(secondCross, 0);
  const double measured = secondCross - firstCross;
  const double analytic = 2 * math::kPi * std::sqrt(length / 9.80665);
  EXPECT_NEAR(measured, analytic, analytic * 0.03) << "L=" << length;
}

INSTANTIATE_TEST_SUITE_P(Lengths, PendulumPeriod,
                         ::testing::Values(2.0, 4.0, 8.0, 16.0));

TEST(Pendulum, HoistingShortensCable) {
  CablePendulum p;
  p.reset({0, 0, 10}, 8.0);
  p.setLength(3.0);
  p.step(0.01);
  EXPECT_NEAR((p.bobPosition() - p.pivot()).norm(), 3.0, 1e-9);
  EXPECT_GT(p.bobPosition().z, 6.5);
}

TEST(Pendulum, LengthClampedPositive) {
  CablePendulum p;
  p.setLength(-5.0);
  EXPECT_GT(p.length(), 0.0);
}

TEST(Pendulum, ZeroDtIsNoOp) {
  CablePendulum p;
  p.reset({0, 0, 10}, 4.0);
  const math::Vec3 before = p.bobPosition();
  p.step(0.0);
  EXPECT_EQ(p.bobPosition(), before);
}

TEST(Integrator, Rk4MatchesExponentialDecay) {
  // y' = -2y, y(0) = 1 → y(t) = exp(-2t).
  double y = 1.0;
  const double dt = 0.01;
  for (double t = 0; t < 1.0; t += dt) {
    y = rk4Step(y, t, dt, [](double, double s) { return -2.0 * s; });
  }
  EXPECT_NEAR(y, std::exp(-2.0), 1e-8);
}

TEST(Integrator, Rk4BeatsEulerOnHarmonicOscillator) {
  struct S {
    double x, v;
    S operator+(const S& o) const { return {x + o.x, v + o.v}; }
    S operator*(double k) const { return {x * k, v * k}; }
  };
  auto f = [](double, const S& s) { return S{s.v, -s.x}; };
  S rk{1, 0}, eu{1, 0};
  const double dt = 0.05;
  for (double t = 0; t < 10.0; t += dt) {
    rk = rk4Step(rk, t, dt, f);
    eu = eulerStep(eu, t, dt, f);
  }
  const double exact = std::cos(10.0);
  EXPECT_LT(std::abs(rk.x - exact), std::abs(eu.x - exact));
  EXPECT_NEAR(rk.x, exact, 1e-4);
}

}  // namespace
}  // namespace cod::physics
