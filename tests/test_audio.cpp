#include "audio/mixer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace cod::audio {
namespace {

TEST(Pcm, SineProperties) {
  const PcmBuffer s = makeSine(48000, 440.0, 0.5, 0.8);
  EXPECT_EQ(s.frames(), 24000u);
  EXPECT_NEAR(s.durationSec(), 0.5, 1e-9);
  EXPECT_NEAR(s.peak(), 0.8f, 0.01f);
  EXPECT_NEAR(s.rms(), 0.8 / std::sqrt(2.0), 0.01);
}

TEST(Pcm, NoiseIsSeededAndBounded) {
  const PcmBuffer a = makeNoise(48000, 0.1, 0.5, 7);
  const PcmBuffer b = makeNoise(48000, 0.1, 0.5, 7);
  const PcmBuffer c = makeNoise(48000, 0.1, 0.5, 8);
  ASSERT_EQ(a.frames(), b.frames());
  bool anyDiff = false;
  for (std::size_t i = 0; i < a.frames(); ++i) {
    EXPECT_EQ(a.sample(i), b.sample(i));
    anyDiff |= a.sample(i) != c.sample(i);
  }
  EXPECT_TRUE(anyDiff);
  EXPECT_LE(a.peak(), 0.5f);
}

TEST(Pcm, EngineLoopHasEnergy) {
  const PcmBuffer e = makeEngineLoop(48000, 900.0, 0.5, 3);
  EXPECT_GT(e.rms(), 0.1);
  EXPECT_LE(e.peak(), 1.0f);
}

TEST(Pcm, CollisionBurstDecays) {
  const PcmBuffer burst = makeCollisionBurst(48000, 0.6, 5);
  // RMS of the first 50 ms dwarfs the last 50 ms.
  auto rmsRange = [&](std::size_t from, std::size_t to) {
    double acc = 0;
    for (std::size_t i = from; i < to; ++i)
      acc += static_cast<double>(burst.sample(i)) * burst.sample(i);
    return std::sqrt(acc / (to - from));
  };
  const std::size_t n = burst.frames();
  EXPECT_GT(rmsRange(0, 2400), 10.0 * rmsRange(n - 2400, n));
}

TEST(Pcm, RejectsBadRate) {
  EXPECT_THROW(PcmBuffer(0, {}), std::invalid_argument);
}

TEST(Mixer, SilenceWhenIdle) {
  Mixer m(48000);
  std::vector<float> out;
  m.mix(out, 128);
  ASSERT_EQ(out.size(), 128u);
  for (const float s : out) EXPECT_EQ(s, 0.0f);
  EXPECT_EQ(m.framesMixed(), 128u);
}

TEST(Mixer, OneShotPlaysAndFinishes) {
  Mixer m(48000);
  auto buf = std::make_shared<PcmBuffer>(makeSine(48000, 440, 0.01, 0.5));
  const ChannelId id = m.play(buf, 1.0, /*loop=*/false);
  EXPECT_TRUE(m.playing(id));
  std::vector<float> out;
  m.mix(out, 480);  // one 10 ms buffer inside a 10 ms block
  double energy = 0;
  for (const float s : out) energy += std::abs(s);
  EXPECT_GT(energy, 1.0);
  m.mix(out, 480);  // buffer exhausted: channel freed
  EXPECT_FALSE(m.playing(id));
  EXPECT_EQ(m.activeChannels(), 0u);
}

TEST(Mixer, LoopingChannelKeepsPlaying) {
  Mixer m(48000);
  auto buf = std::make_shared<PcmBuffer>(makeSine(48000, 440, 0.01, 0.5));
  const ChannelId id = m.play(buf, 1.0, /*loop=*/true);
  std::vector<float> out;
  for (int i = 0; i < 10; ++i) m.mix(out, 480);
  EXPECT_TRUE(m.playing(id));
  double energy = 0;
  for (const float s : out) energy += std::abs(s);
  EXPECT_GT(energy, 1.0);
  m.stop(id);
  EXPECT_FALSE(m.playing(id));
}

TEST(Mixer, GainScalesOutput) {
  auto buf = std::make_shared<PcmBuffer>(makeSine(48000, 100, 0.1, 0.5));
  Mixer loud(48000), quiet(48000);
  loud.play(buf, 1.0);
  quiet.play(buf, 0.1);
  std::vector<float> a, b;
  loud.mix(a, 1000);
  quiet.mix(b, 1000);
  double ea = 0, eb = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ea += std::abs(a[i]);
    eb += std::abs(b[i]);
  }
  EXPECT_GT(ea, 5.0 * eb);
}

TEST(Mixer, PlaybackRateResamples) {
  // At rate 2.0 a buffer finishes in half the frames.
  Mixer m(48000);
  auto buf = std::make_shared<PcmBuffer>(makeSine(48000, 440, 0.02, 0.5));
  const ChannelId id = m.play(buf, 1.0, false, 2.0);
  std::vector<float> out;
  m.mix(out, 480);  // 10 ms at double speed consumes the 20 ms buffer
  EXPECT_FALSE(m.playing(id));
}

TEST(Mixer, MixIsSoftClipped) {
  Mixer m(48000);
  auto loud = std::make_shared<PcmBuffer>(makeSine(48000, 100, 0.1, 1.0));
  for (int i = 0; i < 8; ++i) m.play(loud, 1.0);
  std::vector<float> out;
  m.mix(out, 1000);
  for (const float s : out) {
    EXPECT_LE(s, 1.0f);
    EXPECT_GE(s, -1.0f);
  }
}

TEST(Mixer, PlayRejectsEmpty) {
  Mixer m(48000);
  EXPECT_EQ(m.play(nullptr), 0u);
}

TEST(AudioEngine, BuiltInBankRegistered) {
  AudioEngine e;
  EXPECT_TRUE(e.hasSound("collision"));
  EXPECT_TRUE(e.hasSound("alarm"));
  EXPECT_TRUE(e.hasSound("engine"));
  EXPECT_TRUE(e.hasSound("background"));
  EXPECT_FALSE(e.hasSound("nonexistent"));
}

TEST(AudioEngine, PlayEventCounts) {
  AudioEngine e;
  EXPECT_TRUE(e.playEvent("collision").has_value());
  EXPECT_FALSE(e.playEvent("bogus").has_value());
  EXPECT_EQ(e.eventsPlayed(), 1u);
}

TEST(AudioEngine, EngineLoopFollowsIgnitionAndRpm) {
  AudioEngine e;
  e.setEngine(true, 900.0);
  EXPECT_EQ(e.mixer().activeChannels(), 1u);
  e.setEngine(true, 1800.0);  // pitch shift, same channel
  EXPECT_EQ(e.mixer().activeChannels(), 1u);
  e.setEngine(false, 0.0);
  EXPECT_EQ(e.mixer().activeChannels(), 0u);
}

TEST(AudioEngine, PumpProducesSound) {
  AudioEngine e;
  e.setBackground(true, 0.4);
  e.setEngine(true, 1000.0);
  const std::vector<float> chunk = e.pump(0.1);
  EXPECT_EQ(chunk.size(), 4800u);
  double energy = 0;
  for (const float s : chunk) energy += std::abs(s);
  EXPECT_GT(energy, 10.0);
}

TEST(AudioEngine, RegisterOverridesSound) {
  AudioEngine e;
  auto silent = std::make_shared<PcmBuffer>(
      PcmBuffer(48000, std::vector<float>(480, 0.0f)));
  e.registerSound("collision", silent);
  e.playEvent("collision");
  const std::vector<float> chunk = e.pump(0.01);
  for (const float s : chunk) EXPECT_EQ(s, 0.0f);
}

}  // namespace
}  // namespace cod::audio
