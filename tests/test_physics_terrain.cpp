#include "physics/terrain.hpp"

#include <gtest/gtest.h>

namespace cod::physics {
namespace {

TEST(Terrain, FlatByDefault) {
  const Terrain t(11, 11, 1.0);
  EXPECT_DOUBLE_EQ(t.height(5.0, 5.0), 0.0);
  EXPECT_DOUBLE_EQ(t.slopeDeg(5.0, 5.0), 0.0);
  EXPECT_EQ(t.normal(5.0, 5.0), math::Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(t.width(), 10.0);
  EXPECT_DOUBLE_EQ(t.depth(), 10.0);
}

TEST(Terrain, ConstructionValidation) {
  EXPECT_THROW(Terrain(1, 5, 1.0), std::invalid_argument);
  EXPECT_THROW(Terrain(5, 5, 0.0), std::invalid_argument);
}

TEST(Terrain, BilinearInterpolation) {
  Terrain t(3, 3, 1.0);
  t.setHeightAt(1, 1, 4.0);
  // Exactly on the bumped vertex.
  EXPECT_DOUBLE_EQ(t.height(1.0, 1.0), 4.0);
  // Halfway to a zero neighbour.
  EXPECT_DOUBLE_EQ(t.height(1.5, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(t.height(1.0, 1.5), 2.0);
  // Diagonal quarter point.
  EXPECT_DOUBLE_EQ(t.height(1.5, 1.5), 1.0);
}

TEST(Terrain, ClampsAtBorders) {
  Terrain t(3, 3, 1.0);
  t.setHeightAt(0, 0, 2.0);
  EXPECT_DOUBLE_EQ(t.height(-5.0, -5.0), 2.0);
  EXPECT_DOUBLE_EQ(t.height(100.0, 100.0), 0.0);
}

TEST(Terrain, SetHeightValidation) {
  Terrain t(3, 3, 1.0);
  EXPECT_THROW(t.setHeightAt(-1, 0, 1.0), std::out_of_range);
  EXPECT_THROW(t.setHeightAt(0, 3, 1.0), std::out_of_range);
}

TEST(Terrain, NormalTiltsAgainstSlope) {
  // A ramp rising along +x: normal leans toward -x.
  Terrain t(11, 11, 1.0);
  for (int j = 0; j < 11; ++j)
    for (int i = 0; i < 11; ++i) t.setHeightAt(i, j, 0.5 * i);
  const math::Vec3 n = t.normal(5.0, 5.0);
  EXPECT_LT(n.x, 0.0);
  EXPECT_NEAR(n.y, 0.0, 1e-9);
  EXPECT_GT(n.z, 0.0);
  EXPECT_NEAR(t.slopeDeg(5.0, 5.0), math::rad2deg(std::atan(0.5)), 0.5);
}

TEST(Terrain, FollowOnFlatGroundIsLevel) {
  const Terrain t(21, 21, 1.0);
  const auto p = t.follow({10, 10}, 0.7, 4.5, 2.5);
  EXPECT_DOUBLE_EQ(p.z, 0.0);
  EXPECT_DOUBLE_EQ(p.pitch, 0.0);
  EXPECT_DOUBLE_EQ(p.roll, 0.0);
}

TEST(Terrain, FollowPitchesUpOnRampFacingUphill) {
  Terrain t(21, 21, 1.0);
  for (int j = 0; j < 21; ++j)
    for (int i = 0; i < 21; ++i) t.setHeightAt(i, j, 0.2 * i);
  // Heading along +x (uphill): nose up, no roll.
  const auto up = t.follow({10, 10}, 0.0, 4.0, 2.0);
  EXPECT_GT(up.pitch, 0.0);
  EXPECT_NEAR(up.roll, 0.0, 1e-9);
  EXPECT_NEAR(up.pitch, std::atan(0.2), 1e-6);
  // Heading along +y (across the slope): pure roll, right side uphill.
  const auto across = t.follow({10, 10}, math::kPi / 2, 4.0, 2.0);
  EXPECT_NEAR(across.pitch, 0.0, 1e-9);
  EXPECT_GT(std::abs(across.roll), 0.0);
  // Facing downhill flips the pitch sign.
  const auto down = t.follow({10, 10}, math::kPi, 4.0, 2.0);
  EXPECT_NEAR(down.pitch, -up.pitch, 1e-9);
}

TEST(Terrain, RollingIsDeterministicAndBounded) {
  const Terrain a = Terrain::rolling(64, 64, 1.0, 1.0, 5);
  const Terrain b = Terrain::rolling(64, 64, 1.0, 1.0, 5);
  const Terrain c = Terrain::rolling(64, 64, 1.0, 1.0, 6);
  double maxAbs = 0.0;
  bool anyDifferent = false;
  for (int j = 0; j < 64; ++j) {
    for (int i = 0; i < 64; ++i) {
      EXPECT_DOUBLE_EQ(a.heightAt(i, j), b.heightAt(i, j));
      anyDifferent |= a.heightAt(i, j) != c.heightAt(i, j);
      maxAbs = std::max(maxAbs, std::abs(a.heightAt(i, j)));
    }
  }
  EXPECT_TRUE(anyDifferent);
  EXPECT_GT(maxAbs, 0.0);
  EXPECT_LT(maxAbs, 2.0);  // sum of three octaves < 2 * amplitude
}

}  // namespace
}  // namespace cod::physics
