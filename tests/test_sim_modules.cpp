// Module-level tests: object-class codecs, scene building, and individual
// LPs wired over a single CB (local fast path).
#include <gtest/gtest.h>

#include "core/cluster.hpp"

#include "sim/dashboard_module.hpp"
#include "sim/display_module.hpp"
#include "sim/dynamics_module.hpp"
#include "sim/instructor_module.hpp"
#include "sim/platform_module.hpp"
#include "sim/scenario_module.hpp"
#include "sim/scene_builder.hpp"

namespace cod::sim {
namespace {

TEST(ObjectClasses, ControlsRoundTrip) {
  crane::CraneControls c;
  c.steering = -0.4;
  c.throttle = 0.9;
  c.brake = 0.1;
  c.reverse = true;
  c.ignition = true;
  c.joystickSlew = 0.2;
  c.joystickLuff = -0.3;
  c.joystickTelescope = 0.5;
  c.joystickHoist = -0.8;
  c.hookLatch = true;
  const crane::CraneControls d = decodeControls(encodeControls(c));
  EXPECT_DOUBLE_EQ(d.steering, c.steering);
  EXPECT_DOUBLE_EQ(d.throttle, c.throttle);
  EXPECT_EQ(d.reverse, c.reverse);
  EXPECT_EQ(d.ignition, c.ignition);
  EXPECT_DOUBLE_EQ(d.joystickHoist, c.joystickHoist);
  EXPECT_EQ(d.hookLatch, c.hookLatch);
}

TEST(ObjectClasses, CraneStateRoundTrip) {
  CraneStateMsg m;
  m.state.carrierPosition = {1, 2, 3};
  m.state.carrierHeadingRad = 0.5;
  m.state.slewAngleRad = -0.3;
  m.state.boomPitchRad = 0.8;
  m.state.boomLengthM = 14.0;
  m.state.cableLengthM = 6.5;
  m.state.cargoAttached = true;
  m.state.engineOn = true;
  m.state.engineRpm = 1234.0;
  m.boomTip = {4, 5, 6};
  m.hookPosition = {4, 5, 1};
  m.cargoPosition = {4, 5, 0.4};
  m.workingRadiusM = 9.5;
  m.momentUtilisation = 0.7;
  m.alarmBits = 0b101;
  m.simTimeSec = 42.5;
  const CraneStateMsg d = decodeCraneState(encodeCraneState(m));
  EXPECT_EQ(d.state.carrierPosition, m.state.carrierPosition);
  EXPECT_DOUBLE_EQ(d.state.boomLengthM, 14.0);
  EXPECT_TRUE(d.state.cargoAttached);
  EXPECT_EQ(d.boomTip, m.boomTip);
  EXPECT_EQ(d.alarmBits, 0b101u);
  EXPECT_DOUBLE_EQ(d.simTimeSec, 42.5);
}

TEST(ObjectClasses, EventAndStatusRoundTrip) {
  const ScenarioEventMsg ev{"barHit", 2, {1, 2, 3}, 9.0};
  const ScenarioEventMsg ev2 = decodeScenarioEvent(encodeScenarioEvent(ev));
  EXPECT_EQ(ev2.kind, "barHit");
  EXPECT_EQ(ev2.index, 2);
  EXPECT_EQ(ev2.position, math::Vec3(1, 2, 3));

  ScenarioStatusMsg st;
  st.phase = 3;
  st.score = 77.5;
  st.lastDeduction = "bar 1 collision";
  st.finished = true;
  const ScenarioStatusMsg st2 = decodeScenarioStatus(encodeScenarioStatus(st));
  EXPECT_EQ(st2.phase, 3);
  EXPECT_DOUBLE_EQ(st2.score, 77.5);
  EXPECT_EQ(st2.lastDeduction, "bar 1 collision");
  EXPECT_TRUE(st2.finished);
}

TEST(ObjectClasses, PlatformPoseRoundTrip) {
  PlatformPoseMsg m;
  m.position = {0.1, -0.2, 1.7};
  m.qw = 0.99;
  m.qx = 0.1;
  for (int i = 0; i < 6; ++i) m.legs[i] = 1.5 + 0.01 * i;
  m.vibrationM = 0.003;
  m.reachable = false;
  const PlatformPoseMsg d = decodePlatformPose(encodePlatformPose(m));
  EXPECT_EQ(d.position, m.position);
  EXPECT_DOUBLE_EQ(d.qw, 0.99);
  for (int i = 0; i < 6; ++i) EXPECT_DOUBLE_EQ(d.legs[i], m.legs[i]);
  EXPECT_FALSE(d.reachable);
}

TEST(ObjectClasses, StatusRevisionRoundTrips) {
  ScenarioStatusMsg st;
  st.revision = 42;
  st.deductionCount = 7;
  const ScenarioStatusMsg st2 = decodeScenarioStatus(encodeScenarioStatus(st));
  EXPECT_EQ(st2.revision, 42);
  EXPECT_EQ(st2.deductionCount, 7);
}

/// The exam-scoring stream across a lossy LAN: the scenario module
/// mandates a reliable publication, so the instructor must see every
/// deduction and a never-regressing revision even at 30% packet loss.
TEST(ReliableScoreStream, InstructorMissesNoDeductionOverLossyLan) {
  /// Publishes the crane state + bar-hit events that drive the exam.
  class Feeder : public core::LogicalProcess {
   public:
    Feeder() : core::LogicalProcess("feeder") {}
    void bind(core::CommunicationBackbone& cb) {
      cb.attach(*this);
      statePub_ = cb.publishObjectClass(*this, kClassCraneState);
      eventPub_ = cb.publishObjectClass(*this, kClassScenarioEvents);
    }
    void barHit(std::int64_t bar, double t) {
      backbone()->updateAttributeValues(
          eventPub_, encodeScenarioEvent({"barHit", bar, {}, t}), t);
    }
    void state(double t) {
      CraneStateMsg m;
      m.simTimeSec = t;
      backbone()->updateAttributeValues(statePub_, encodeCraneState(m), t);
    }

   private:
    core::PublicationHandle statePub_ = core::kInvalidHandle;
    core::PublicationHandle eventPub_ = core::kInvalidHandle;
  };

  core::CodCluster::Config cfg;
  cfg.link.lossRate = 0.3;
  cfg.link.jitterSec = 300e-6;
  core::CodCluster cluster(cfg);
  auto& cbSim = cluster.addComputer("sim");
  auto& cbInstructor = cluster.addComputer("instructor");
  ScenarioModule scenario(scenario::compactCourse());
  scenario.bind(cbSim);
  Feeder feeder;
  feeder.bind(cbSim);  // same box as the scenario: events take the fast path
  InstructorModule instructor;
  instructor.bind(cbInstructor);

  // The reliable status channel is up once the first update lands.
  ASSERT_TRUE(cluster.runUntil(
      [&] { return instructor.statusUpdatesSeen() > 0; }, 15.0));

  for (int i = 0; i < 12; ++i) {
    feeder.barHit(i % 3, cluster.now());
    feeder.state(cluster.now());
    cluster.step(0.3);
  }
  // Hits queue on the event subscription and are applied by the *next*
  // state observation; flush the final one.
  feeder.state(cluster.now());
  cluster.step(0.3);
  const std::uint64_t published = scenario.statusPublishes();
  cluster.runUntil(
      [&] {
        return instructor.statusUpdatesSeen() >= published &&
               static_cast<std::uint64_t>(instructor.lastScoreRevision()) >=
                   scenario.exam().revision();
      },
      cluster.now() + 10.0);

  const auto& sheet = scenario.exam().score();
  EXPECT_EQ(sheet.deductions.size(), 12u);
  EXPECT_EQ(instructor.deductionsSeen(),
            static_cast<std::int64_t>(sheet.deductions.size()));
  EXPECT_EQ(static_cast<std::uint64_t>(instructor.lastScoreRevision()),
            scenario.exam().revision());
  EXPECT_EQ(instructor.revisionRegressions(), 0u);
  EXPECT_DOUBLE_EQ(instructor.statusWindow().score, sheet.total);
  // The loss model really was in play on this LAN.
  EXPECT_GT(cluster.network().stats().packetsDropped, 0u);
}

TEST(SceneBuilder, HitsPolygonBudget) {
  const scenario::Course course = scenario::standardLicensureCourse();
  for (const std::size_t target : {1000u, 3235u, 8000u}) {
    const BuiltScene built = buildTrainingScene(course, target);
    EXPECT_NEAR(static_cast<double>(built.scene.polygonCount()),
                static_cast<double>(target), target * 0.15)
        << "target " << target;
  }
}

TEST(SceneBuilder, DynamicIdsAreValid) {
  BuiltScene built =
      buildTrainingScene(scenario::standardLicensureCourse(), 2000);
  EXPECT_NE(built.scene.find(built.ids.carrier), nullptr);
  EXPECT_NE(built.scene.find(built.ids.boom), nullptr);
  EXPECT_NE(built.scene.find(built.ids.cargo), nullptr);
  EXPECT_NE(built.scene.find(built.ids.hook), nullptr);
}

TEST(SceneBuilder, CollisionWorldHasBarsAndCargo) {
  const scenario::Course course = scenario::standardLicensureCourse();
  const auto built = buildCollisionWorld(course);
  EXPECT_EQ(built->barIds.size(), course.bars.size());
  EXPECT_NE(built->world.find(built->cargoId), nullptr);
  // Initially the cargo sits in the pick zone, clear of every bar.
  EXPECT_TRUE(built->world.queryOne(built->cargoId).empty());
}

/// Harness: the whole module set on ONE computer (local fast path), which
/// exercises LP logic without network timing.
class SingleBoxSim : public ::testing::Test {
 protected:
  SingleBoxSim() {
    cb = &cluster.addComputer("onebox");
    DynamicsModule::Config dc;
    dc.course = scenario::compactCourse();
    dynamics = std::make_unique<DynamicsModule>(dc);
    dynamics->bind(*cb);
    dashboard = std::make_unique<DashboardModule>();
    dashboard->bind(*cb);
    instructor = std::make_unique<InstructorModule>();
    instructor->bind(*cb);
    platform = std::make_unique<PlatformModule>();
    platform->bind(*cb);
  }

  core::CodCluster cluster;
  core::CommunicationBackbone* cb = nullptr;
  std::unique_ptr<DynamicsModule> dynamics;
  std::unique_ptr<DashboardModule> dashboard;
  std::unique_ptr<InstructorModule> instructor;
  std::unique_ptr<PlatformModule> platform;
};

TEST_F(SingleBoxSim, ManualControlsDriveTheCrane) {
  crane::CraneControls c;
  c.ignition = true;
  c.throttle = 0.8;
  dashboard->setManualControls(c);
  cluster.step(5.0);
  EXPECT_TRUE(dynamics->craneState().engineOn);
  EXPECT_GT(dynamics->craneState().carrierSpeedMps, 1.0);
  EXPECT_GT(dynamics->vehicle().position().x,
            scenario::compactCourse().startPosition.x + 2.0);
}

TEST_F(SingleBoxSim, InstructorSeesStateAndScore) {
  crane::CraneControls c;
  c.ignition = true;
  c.joystickLuff = 1.0;
  dashboard->setManualControls(c);
  cluster.step(3.0);
  EXPECT_GT(instructor->stateUpdatesSeen(), 10u);
  const StatusWindow& w = instructor->statusWindow();
  EXPECT_GT(w.boomRaiseDeg, math::rad2deg(math::deg2rad(45.0)));
  const std::string text = w.renderText();
  EXPECT_NE(text.find("SWING ANGLE"), std::string::npos);
  EXPECT_NE(text.find("SCORE"), std::string::npos);
}

TEST_F(SingleBoxSim, FaultInjectionReachesDashboard) {
  cluster.step(0.5);
  instructor->injectFault(crane::Meter::kEngineRpm,
                          crane::MeterFault::kDead);
  cluster.step(0.5);
  EXPECT_EQ(dashboard->dashboard().fault(crane::Meter::kEngineRpm),
            crane::MeterFault::kDead);
  const std::string mirror = instructor->dashboardWindow().renderText();
  EXPECT_NE(mirror.find("(DEAD)"), std::string::npos);
}

TEST_F(SingleBoxSim, PlatformFollowsEngineVibration) {
  crane::CraneControls off;
  dashboard->setManualControls(off);
  cluster.step(2.0);
  const double stillVibration = std::abs(platform->lastPublished().vibrationM);
  crane::CraneControls on;
  on.ignition = true;
  dashboard->setManualControls(on);
  cluster.step(4.0);
  EXPECT_GT(platform->posesPublished(), 100u);
  // Legs stay within the actuator stroke at all times.
  for (int i = 0; i < 6; ++i) {
    EXPECT_GE(platform->lastPublished().legs[i],
              platform->stewart().geometry().legMinM - 1e-9);
    EXPECT_LE(platform->lastPublished().legs[i],
              platform->stewart().geometry().legMaxM + 1e-9);
  }
  EXPECT_TRUE(platform->lastPublished().reachable);
  (void)stillVibration;
}

TEST_F(SingleBoxSim, PlatformMotionIsSmooth) {
  crane::CraneControls c;
  c.ignition = true;
  c.throttle = 1.0;
  dashboard->setManualControls(c);
  cluster.step(6.0);
  // No single-tick leg jump beyond 5 cm — the §3.4 smoothness requirement.
  EXPECT_LT(platform->maxLegStepM(), 0.05);
  EXPECT_EQ(platform->unreachableTargets(), 0u);
}

TEST_F(SingleBoxSim, HookLatchPicksUpCargo) {
  // Drive nothing; just run the boom: lower the hook over the cargo.
  // The compact course parks the crane away from the cargo, so move the
  // crane state directly through dynamics by slewing: instead, verify the
  // latch refuses when out of reach.
  crane::CraneControls c;
  c.ignition = true;
  c.hookLatch = true;
  dashboard->setManualControls(c);
  cluster.step(2.0);
  EXPECT_FALSE(dynamics->cargoAttached());  // hook nowhere near the cargo
}

TEST(DisplayModule, FreeRunRendersAtFrameRate) {
  core::CodCluster cluster;
  auto& cb = cluster.addComputer("disp");
  VisualDisplayModule::Config dc;
  dc.useSyncServer = false;
  dc.fbWidth = 32;
  dc.fbHeight = 24;
  dc.frameIntervalSec = 1.0 / 16.0;
  VisualDisplayModule disp(scenario::compactCourse(), dc);
  disp.bind(cb);
  cluster.step(2.0);
  // ~16 fps for 2 s of virtual time (tick quantization costs a little).
  EXPECT_GE(disp.framesRendered(), 28u);
  EXPECT_LE(disp.framesRendered(), 34u);
  EXPECT_GT(disp.renderStats().trianglesDrawn, 0u);
}

TEST(SyncServer, BarrierHoldsUntilAllChannelsReady) {
  core::CodCluster cluster;
  auto& cbS = cluster.addComputer("sync");
  auto& cb0 = cluster.addComputer("d0");
  auto& cb1 = cluster.addComputer("d1");
  SyncServerModule server(2);
  server.bind(cbS);
  VisualDisplayModule::Config dc;
  dc.useSyncServer = true;
  dc.fbWidth = 16;
  dc.fbHeight = 12;
  dc.channel = 0;
  VisualDisplayModule d0(scenario::compactCourse(), dc);
  d0.bind(cb0);
  cluster.step(1.0);
  // Only one of two displays exists: the barrier must hold at frame 0.
  EXPECT_EQ(server.swapsIssued(), 0u);
  EXPECT_EQ(d0.framesRendered(), 1u);
  EXPECT_TRUE(d0.waitingForSwap());
  // The second display joins; the pair starts swapping.
  dc.channel = 1;
  VisualDisplayModule d1(scenario::compactCourse(), dc);
  d1.bind(cb1);
  cluster.step(2.0);
  EXPECT_GT(server.swapsIssued(), 10u);
  EXPECT_GT(d0.framesRendered(), 10u);
  // Both displays advance in lockstep (within one frame).
  EXPECT_NEAR(static_cast<double>(d0.framesRendered()),
              static_cast<double>(d1.framesRendered()), 1.0);
}

}  // namespace
}  // namespace cod::sim
