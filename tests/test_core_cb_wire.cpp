// Wire-level tests of the CB fan-out fast path: an UPDATE/HEARTBEAT/BYE
// frame is encoded once and re-targeted per channel by patching the 4-byte
// channel id, so the bytes each subscriber receives must be identical to a
// full per-channel re-encode.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <memory>
#include <utility>
#include <vector>

#include "core/cb.hpp"
#include "core/protocol.hpp"
#include "net/transport.hpp"

namespace cod::core {
namespace {

/// Transport that records every outbound frame and replays injected
/// datagrams, so tests can assert exact bytes on the wire.
class ScriptedTransport final : public net::Transport {
 public:
  net::NodeAddr localAddress() const override { return {1, 1}; }

  void send(const net::NodeAddr& dst,
            std::span<const std::uint8_t> bytes) override {
    sent.emplace_back(dst, std::vector<std::uint8_t>(bytes.begin(), bytes.end()));
  }

  void broadcast(std::uint16_t /*port*/,
                 std::span<const std::uint8_t> /*bytes*/) override {}

  std::optional<net::Datagram> receive() override {
    if (inbound.empty()) return std::nullopt;
    net::Datagram d = std::move(inbound.front());
    inbound.pop_front();
    return d;
  }

  void inject(const net::NodeAddr& src, std::vector<std::uint8_t> bytes) {
    inbound.push_back(net::Datagram{src, localAddress(), std::move(bytes)});
  }

  std::vector<std::pair<net::NodeAddr, std::vector<std::uint8_t>>> sent;
  std::deque<net::Datagram> inbound;
};

AttributeSet sampleAttrs() {
  AttributeSet a;
  a.set("v", 1.25);
  a.set("n", std::int64_t{7});
  a.set("on", true);
  return a;
}

TEST(PatchChannelId, MatchesFullReencodeForAllChannelBearingTypes) {
  const std::vector<std::uint32_t> ids{0u, 1u, 5u, 0xDEADBEEFu};
  for (const std::uint32_t id : ids) {
    UpdateMsg u;
    u.seq = 42;
    u.timestamp = 3.5;
    u.payload = sampleAttrs().encode();
    auto patched = encode(u);  // channelId == 0
    patchChannelId(patched, id);
    u.channelId = id;
    EXPECT_EQ(patched, encode(u)) << "UpdateMsg channel " << id;

    auto hb = encode(HeartbeatMsg{0, 9.25, true});
    patchChannelId(hb, id);
    EXPECT_EQ(hb, encode(HeartbeatMsg{id, 9.25, true})) << "Heartbeat " << id;

    auto bye = encode(ByeMsg{0, false});
    patchChannelId(bye, id);
    EXPECT_EQ(bye, encode(ByeMsg{id, false})) << "Bye " << id;
  }
}

TEST(PatchChannelId, EncodeIntoReusesBufferAndMatchesEncode) {
  UpdateMsg u;
  u.channelId = 11;
  u.seq = 3;
  u.timestamp = 0.5;
  u.payload = sampleAttrs().encode();
  std::vector<std::uint8_t> frame;
  encodeInto(u, frame);
  EXPECT_EQ(frame, encode(u));
  // Re-encoding a smaller message into the same buffer must not keep bytes
  // of the previous, larger frame.
  UpdateMsg small;
  small.channelId = 12;
  small.seq = 4;
  encodeInto(small, frame);
  EXPECT_EQ(frame, encode(small));
}

/// Zero-copy regression: encoding an AttributeSet straight into a writer
/// (the path updateAttributeValues uses for the reusable UPDATE frame)
/// must be byte-identical to the allocating encode().
TEST(ZeroCopyEncode, AttributeSetEncodeIntoMatchesEncode) {
  const AttributeSet attrs = sampleAttrs();
  net::WireWriter w;
  w.u32(0xA5A5A5A5);  // writer already holds bytes; append must not care
  const std::size_t before = w.size();
  attrs.encodeInto(w);
  const auto direct = attrs.encode();
  ASSERT_EQ(w.size(), before + direct.size());
  EXPECT_TRUE(std::equal(direct.begin(), direct.end(),
                         w.bytes().begin() + static_cast<long>(before)));
}

TEST(ZeroCopyEncode, BeginEndBlobMatchesBlob) {
  const std::vector<std::uint8_t> content{1, 2, 3, 4, 5};
  net::WireWriter viaBlob;
  viaBlob.blob(content);
  net::WireWriter inPlace;
  const std::size_t start = inPlace.beginBlob();
  inPlace.raw(content);
  inPlace.endBlob(start);
  EXPECT_EQ(inPlace.bytes(), viaBlob.bytes());
  // Empty blob too.
  net::WireWriter empty1, empty2;
  empty1.blob({});
  const std::size_t s2 = empty2.beginBlob();
  empty2.endBlob(s2);
  EXPECT_EQ(empty2.bytes(), empty1.bytes());
}

class WireFixture : public ::testing::Test {
 protected:
  WireFixture() {
    auto t = std::make_unique<ScriptedTransport>();
    transport = t.get();
    cb = std::make_unique<CommunicationBackbone>("wire", std::move(t));
  }

  /// Establish two outgoing channels (ids 5 and 9) to two fake remotes.
  PublicationHandle publishWithTwoChannels() {
    cb->attach(lp);
    const PublicationHandle h = cb->publishObjectClass(lp, "wire.cls");
    transport->inject(sub1, encode(ChannelConnectionMsg{77, h, 5, "wire.cls"}));
    transport->inject(sub2, encode(ChannelConnectionMsg{78, h, 9, "wire.cls"}));
    cb->tick(0.0);
    EXPECT_EQ(cb->channelCount(h), 2u);
    transport->sent.clear();
    return h;
  }

  LogicalProcess lp{"lp"};
  ScriptedTransport* transport = nullptr;
  std::unique_ptr<CommunicationBackbone> cb;
  const net::NodeAddr sub1{10, 1};
  const net::NodeAddr sub2{20, 1};
};

TEST_F(WireFixture, FanOutUpdateBytesIdenticalToPerChannelEncode) {
  const PublicationHandle h = publishWithTwoChannels();
  const AttributeSet attrs = sampleAttrs();
  cb->updateAttributeValues(h, attrs, 2.5);
  cb->flushBatches();  // one staged frame per peer: leaves bare, not boxed

  ASSERT_EQ(transport->sent.size(), 2u);
  UpdateMsg ref;
  ref.seq = 1;
  ref.timestamp = 2.5;
  ref.payload = attrs.encode();
  ref.channelId = 5;
  EXPECT_EQ(transport->sent[0].first, sub1);
  EXPECT_EQ(transport->sent[0].second, encode(ref));
  ref.channelId = 9;
  EXPECT_EQ(transport->sent[1].first, sub2);
  EXPECT_EQ(transport->sent[1].second, encode(ref));

  // Each frame still decodes on its own (the patch kept it well-formed).
  for (const auto& [dst, bytes] : transport->sent) {
    const auto msg = decode(bytes);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::kUpdate);
    const auto decoded = AttributeSet::decode(msg->update.payload);
    ASSERT_TRUE(decoded.has_value());
  }
}

TEST_F(WireFixture, SecondUpdateReusedBufferStillExactBytes) {
  const PublicationHandle h = publishWithTwoChannels();
  cb->updateAttributeValues(h, sampleAttrs(), 1.0);
  cb->flushBatches();
  transport->sent.clear();
  // A different (smaller) payload through the same reused frame buffer.
  AttributeSet small;
  small.set("v", 2.0);
  cb->updateAttributeValues(h, small, 2.0);
  cb->flushBatches();
  ASSERT_EQ(transport->sent.size(), 2u);
  UpdateMsg ref;
  ref.seq = 2;
  ref.timestamp = 2.0;
  ref.payload = small.encode();
  ref.channelId = 5;
  EXPECT_EQ(transport->sent[0].second, encode(ref));
  ref.channelId = 9;
  EXPECT_EQ(transport->sent[1].second, encode(ref));
}

TEST_F(WireFixture, HeartbeatFanOutBytesIdenticalToPerChannelEncode) {
  publishWithTwoChannels();
  cb->tick(0.75);  // past heartbeatIntervalSec (0.5) with idle channels
  ASSERT_EQ(transport->sent.size(), 2u);
  EXPECT_EQ(transport->sent[0].second,
            encode(HeartbeatMsg{5, 0.75, /*fromPublisher=*/true}));
  EXPECT_EQ(transport->sent[1].second,
            encode(HeartbeatMsg{9, 0.75, /*fromPublisher=*/true}));
}

TEST_F(WireFixture, UnpublishByeBytesIdenticalToPerChannelEncode) {
  const PublicationHandle h = publishWithTwoChannels();
  cb->unpublish(h);
  ASSERT_EQ(transport->sent.size(), 2u);
  EXPECT_EQ(transport->sent[0].second,
            encode(ByeMsg{5, /*fromPublisher=*/true}));
  EXPECT_EQ(transport->sent[1].second,
            encode(ByeMsg{9, /*fromPublisher=*/true}));
}

/// A reliable channel's retransmit must put the byte-identical frame back
/// on the wire (buffered once, channel id re-patched — never re-encoded).
TEST_F(WireFixture, NackRetransmitReplaysExactUpdateBytes) {
  cb->attach(lp);
  const PublicationHandle h = cb->publishObjectClass(lp, "wire.cls");
  transport->inject(sub1,
                    encode(ChannelConnectionMsg{77, h, 5, "wire.cls",
                                                net::QosClass::kReliableOrdered}));
  cb->tick(0.0);
  transport->sent.clear();

  const AttributeSet attrs = sampleAttrs();
  cb->updateAttributeValues(h, attrs, 1.5);
  cb->flushBatches();
  ASSERT_EQ(transport->sent.size(), 1u);
  const auto original = transport->sent[0].second;
  transport->sent.clear();

  transport->inject(sub1, encode(NackMsg{5, {1}}));
  cb->tick(0.01);
  ASSERT_GE(transport->sent.size(), 1u);
  EXPECT_EQ(transport->sent[0].first, sub1);
  EXPECT_EQ(transport->sent[0].second, original);
  UpdateMsg ref;
  ref.channelId = 5;
  ref.seq = 1;
  ref.timestamp = 1.5;
  ref.payload = attrs.encode();
  EXPECT_EQ(transport->sent[0].second, encode(ref));
  EXPECT_EQ(cb->stats().reliable.retransmitsSent, 1u);
}

/// Best-effort publications must not pay for the reliable layer: no frame
/// buffering, no retransmits, identical wire traffic.
TEST_F(WireFixture, BestEffortPublicationBuffersNothing) {
  const PublicationHandle h = publishWithTwoChannels();
  for (int i = 0; i < 10; ++i)
    cb->updateAttributeValues(h, sampleAttrs(), 0.1 * i);
  cb->flushBatches();
  EXPECT_EQ(cb->stats().reliable.framesBuffered, 0u);
  EXPECT_EQ(cb->stats().reliable.retransmitsSent, 0u);
  // A NACK against a best-effort channel is ignored, not served.
  transport->sent.clear();
  transport->inject(sub1, encode(NackMsg{5, {1, 2, 3}}));
  cb->tick(0.01);
  EXPECT_TRUE(transport->sent.empty());
}

/// Regression: publish → subscribe (local fast path) → unsubscribe →
/// update. The publication table must not retain the dead subscriber —
/// no delivery, truthful channelCount, and no crash.
TEST_F(WireFixture, UnsubscribedLocalSubscriberIsErasedFromPublication) {
  LogicalProcess sub{"sub"};
  cb->attach(lp);
  cb->attach(sub);
  const PublicationHandle h = cb->publishObjectClass(lp, "local.cls");
  const SubscriptionHandle s = cb->subscribeObjectClass(sub, "local.cls");
  EXPECT_EQ(cb->channelCount(h), 1u);

  cb->updateAttributeValues(h, sampleAttrs(), 0.1);
  EXPECT_EQ(cb->pending(s), 1u);
  EXPECT_EQ(cb->stats().updatesLocalFastPath, 1u);

  cb->unsubscribe(s);
  EXPECT_EQ(cb->channelCount(h), 0u);
  cb->updateAttributeValues(h, sampleAttrs(), 0.2);
  EXPECT_EQ(cb->stats().updatesLocalFastPath, 1u);  // nothing new delivered
  EXPECT_EQ(cb->channelCount(h), 0u);
}

// ---- Tick-coalesced batching -------------------------------------------

/// Three updates staged in one tick leave as ONE kBatch container per
/// peer, and every sub-frame is byte-identical to the un-batched encode.
TEST_F(WireFixture, ThreeUpdatesOneTickOneContainerPerPeer) {
  const PublicationHandle h = publishWithTwoChannels();
  const AttributeSet attrs = sampleAttrs();
  cb->updateAttributeValues(h, attrs, 1.0);
  cb->updateAttributeValues(h, attrs, 2.0);
  cb->updateAttributeValues(h, attrs, 3.0);
  cb->flushBatches();

  ASSERT_EQ(transport->sent.size(), 2u);  // one datagram per peer, not six
  EXPECT_EQ(cb->stats().batch.datagramsCoalesced, 2u);
  EXPECT_EQ(cb->stats().batch.framesCoalesced, 6u);
  const std::uint32_t channelIds[2] = {5, 9};
  for (int peer = 0; peer < 2; ++peer) {
    const auto msg = decode(transport->sent[peer].second);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, MsgType::kBatch);
    ASSERT_EQ(msg->batch.frames.size(), 3u);
    for (std::uint64_t i = 0; i < 3; ++i) {
      UpdateMsg ref;
      ref.channelId = channelIds[peer];
      ref.seq = i + 1;
      ref.timestamp = static_cast<double>(i + 1);
      ref.payload = attrs.encode();
      EXPECT_EQ(msg->batch.frames[i], encode(ref))
          << "peer " << peer << " frame " << i;
    }
  }
}

/// Best-effort and reliable sub-frames share one container when both
/// publications fan out to the same peer in the same tick.
TEST_F(WireFixture, MixedQosFramesShareOneContainer) {
  cb->attach(lp);
  const PublicationHandle be = cb->publishObjectClass(lp, "wire.be");
  const PublicationHandle rel = cb->publishObjectClass(
      lp, "wire.rel", net::QosClass::kReliableOrdered);
  transport->inject(sub1, encode(ChannelConnectionMsg{70, be, 5, "wire.be"}));
  transport->inject(sub1,
                    encode(ChannelConnectionMsg{71, rel, 6, "wire.rel",
                                                net::QosClass::kReliableOrdered}));
  cb->tick(0.0);
  transport->sent.clear();

  const AttributeSet attrs = sampleAttrs();
  cb->updateAttributeValues(be, attrs, 1.0);
  cb->updateAttributeValues(rel, attrs, 1.0);
  cb->flushBatches();
  ASSERT_EQ(transport->sent.size(), 1u);
  const auto msg = decode(transport->sent[0].second);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->type, MsgType::kBatch);
  ASSERT_EQ(msg->batch.frames.size(), 2u);
  const auto first = decode(msg->batch.frames[0]);
  const auto second = decode(msg->batch.frames[1]);
  ASSERT_TRUE(first.has_value() && second.has_value());
  EXPECT_EQ(first->update.channelId, 5u);
  EXPECT_EQ(second->update.channelId, 6u);
  // The reliable copy is window-buffered for retransmission as usual.
  EXPECT_EQ(cb->stats().reliable.framesBuffered, 1u);
}

/// Receive interop: a container from a batching peer is unpacked and every
/// sub-message dispatched; bare frames from un-batched senders still work.
TEST_F(WireFixture, ReceivesBatchedAndBareFramesAlike) {
  LogicalProcess sub{"sub"};
  cb->attach(sub);
  const SubscriptionHandle s = cb->subscribeObjectClass(sub, "far.cls");
  // Bare ACKNOWLEDGE (un-batched sender), then a batch carrying the
  // CHANNEL_ACK and two updates (batched sender).
  transport->inject(sub1, encode(AcknowledgeMsg{s, 40, "far.cls"}));
  cb->tick(0.0);
  ASSERT_EQ(cb->sourceCount(s), 0u);  // connection sent, not yet acked
  UpdateMsg u1;
  u1.channelId = 1;  // first channel id this CB allocates
  u1.seq = 1;
  u1.timestamp = 0.5;
  u1.payload = sampleAttrs().encode();
  UpdateMsg u2 = u1;
  u2.seq = 2;
  u2.timestamp = 0.6;
  BatchMsg batch;
  batch.frames = {encode(ChannelAckMsg{1, 40}), encode(u1), encode(u2)};
  transport->inject(sub1, encode(batch));
  cb->tick(0.01);
  EXPECT_EQ(cb->sourceCount(s), 1u);
  EXPECT_EQ(cb->stats().updatesDelivered, 2u);
  ASSERT_NE(cb->latest(s), nullptr);
  EXPECT_EQ(cb->latest(s)->seq, 2u);
  EXPECT_EQ(cb->stats().batch.datagramsUnpacked, 1u);
  EXPECT_EQ(cb->stats().batch.framesUnpacked, 3u);
  EXPECT_EQ(cb->stats().malformedDrops, 0u);
}

/// Corrupt containers are dropped without crashing AND without side
/// effects: truncated mid-frame, lying counts, trailing garbage, nested
/// batches, zero-length sub-frames, empty containers. Sub-frames ahead of
/// the corruption must not have been dispatched — a half-applied datagram
/// is a state the un-batched protocol can never produce.
TEST_F(WireFixture, CorruptContainersDroppedAtomically) {
  UpdateMsg u;
  u.channelId = 1;
  u.seq = 1;
  u.payload = sampleAttrs().encode();
  BatchMsg batch;
  batch.frames = {encode(u), encode(HeartbeatMsg{1, 0.5, true})};
  const auto good = encode(batch);

  for (std::size_t cut = 1; cut + 1 < good.size(); ++cut)
    transport->inject(sub1,
                      std::vector<std::uint8_t>(good.begin(),
                                                good.begin() + cut));
  auto trailing = good;  // valid frames followed by a lying tail
  trailing.push_back(0x00);
  transport->inject(sub1, trailing);
  BatchMsg nested;
  nested.frames = {good};
  transport->inject(sub1, encode(nested));
  transport->inject(sub1, std::vector<std::uint8_t>{10, 1, 0, 0, 0, 0, 0});
  transport->inject(sub1, std::vector<std::uint8_t>{10, 0, 0});  // count=0
  cb->tick(0.0);
  EXPECT_GT(cb->stats().malformedDrops, 0u);
  // Atomic rejection: not one sub-frame of any corrupt container ran —
  // the leading valid UPDATE in `trailing` was not delivered or counted.
  EXPECT_EQ(cb->stats().batch.datagramsUnpacked, 0u);
  EXPECT_EQ(cb->stats().batch.framesUnpacked, 0u);
  EXPECT_EQ(cb->stats().unknownChannelDrops, 0u);
  // A well-formed bare heartbeat still gets through afterwards.
  transport->inject(sub1, encode(HeartbeatMsg{99, 0.5, true}));
  cb->tick(0.01);  // unknown channel: ignored, but parsed fine
  SUCCEED();
}

/// Two publications of the same class on one CB acknowledge a discovery
/// broadcast in publication-id (creation) order, whatever the hash-table
/// layout — channel-id assignment downstream depends on this order.
TEST_F(WireFixture, SameClassPublicationsAcknowledgeInCreationOrder) {
  LogicalProcess lp2{"lp2"};
  cb->attach(lp);
  cb->attach(lp2);
  const PublicationHandle first = cb->publishObjectClass(lp, "dup.cls");
  const PublicationHandle second = cb->publishObjectClass(lp2, "dup.cls");
  ASSERT_LT(first, second);
  transport->inject(sub1, encode(SubscriptionMsg{500, "dup.cls"}));
  cb->tick(0.0);
  ASSERT_EQ(transport->sent.size(), 1u);  // both ACKs ride one container
  const auto msg = decode(transport->sent[0].second);
  ASSERT_TRUE(msg.has_value());
  ASSERT_EQ(msg->type, MsgType::kBatch);
  ASSERT_EQ(msg->batch.frames.size(), 2u);
  EXPECT_EQ(msg->batch.frames[0], encode(AcknowledgeMsg{500, first, "dup.cls"}));
  EXPECT_EQ(msg->batch.frames[1],
            encode(AcknowledgeMsg{500, second, "dup.cls"}));
}

/// A frame bigger than the byte budget bypasses the container and goes out
/// bare (wire-compatible; the transport may fragment, the CB never does).
TEST_F(WireFixture, OversizeFrameBypassesContainer) {
  const PublicationHandle h = publishWithTwoChannels();
  const auto soloBefore = cb->stats().batch.soloFlushes;
  AttributeSet big;
  big.set("blob", std::string(2000, 'x'));
  cb->updateAttributeValues(h, sampleAttrs(), 1.0);  // small, staged
  cb->updateAttributeValues(h, big, 2.0);            // oversize, bare
  cb->flushBatches();
  // Per peer: the oversize frame went out on its own, the small one in a
  // solo flush — so four datagrams, two of them bare oversize.
  ASSERT_EQ(transport->sent.size(), 4u);
  EXPECT_EQ(cb->stats().batch.oversizeSends, 2u);
  EXPECT_EQ(cb->stats().batch.soloFlushes, soloBefore + 2);
  int oversize = 0;
  for (const auto& [dst, bytes] : transport->sent) {
    const auto msg = decode(bytes);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, MsgType::kUpdate);  // never boxed
    if (bytes.size() > 1200) ++oversize;
  }
  EXPECT_EQ(oversize, 2);
}

/// With batching disabled the wire is exactly the pre-batching protocol:
/// one bare datagram per frame, no containers anywhere.
TEST(WireNoBatching, DisabledConfigKeepsBareFrames) {
  auto t = std::make_unique<ScriptedTransport>();
  ScriptedTransport* transport = t.get();
  CommunicationBackbone::Config cfg;
  cfg.batch.enabled = false;
  CommunicationBackbone cb("plain", std::move(t), cfg);
  LogicalProcess lp{"lp"};
  cb.attach(lp);
  const PublicationHandle h = cb.publishObjectClass(lp, "wire.cls");
  transport->inject({10, 1}, encode(ChannelConnectionMsg{77, h, 5, "wire.cls"}));
  cb.tick(0.0);
  transport->sent.clear();
  const AttributeSet attrs = sampleAttrs();
  for (int i = 0; i < 3; ++i)
    cb.updateAttributeValues(h, attrs, 1.0 + i);
  cb.tick(0.01);
  ASSERT_EQ(transport->sent.size(), 3u);
  for (std::uint64_t i = 0; i < 3; ++i) {
    UpdateMsg ref;
    ref.channelId = 5;
    ref.seq = i + 1;
    ref.timestamp = 1.0 + static_cast<double>(i);
    ref.payload = attrs.encode();
    EXPECT_EQ(transport->sent[i].second, encode(ref));
  }
  EXPECT_EQ(cb.stats().batch.datagramsCoalesced, 0u);
  EXPECT_EQ(cb.stats().batch.soloFlushes, 0u);
}

/// The byte budget splits a long staging run into MTU-sized containers.
TEST(WireNoBatching, BudgetSplitsContainers) {
  auto t = std::make_unique<ScriptedTransport>();
  ScriptedTransport* transport = t.get();
  CommunicationBackbone::Config cfg;
  cfg.batch.byteBudget = 256;
  CommunicationBackbone cb("budget", std::move(t), cfg);
  LogicalProcess lp{"lp"};
  cb.attach(lp);
  const PublicationHandle h = cb.publishObjectClass(lp, "wire.cls");
  transport->inject({10, 1}, encode(ChannelConnectionMsg{77, h, 5, "wire.cls"}));
  cb.tick(0.0);
  transport->sent.clear();
  for (int i = 0; i < 20; ++i)
    cb.updateAttributeValues(h, sampleAttrs(), 0.1 * i);
  cb.flushBatches();
  ASSERT_GT(transport->sent.size(), 1u);   // budget forced several flushes
  EXPECT_LT(transport->sent.size(), 20u);  // but far fewer than one-per-frame
  EXPECT_GT(cb.stats().batch.budgetFlushes, 0u);
  for (const auto& [dst, bytes] : transport->sent) {
    EXPECT_LE(bytes.size(), 256u);
    ASSERT_TRUE(decode(bytes).has_value());
  }
  // Sub-frames survive the split in order.
  std::uint64_t expectSeq = 1;
  for (const auto& [dst, bytes] : transport->sent) {
    const auto msg = decode(bytes);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, MsgType::kBatch);
    for (const auto& frame : msg->batch.frames) {
      const auto sub = decode(frame);
      ASSERT_TRUE(sub.has_value());
      ASSERT_EQ(sub->type, MsgType::kUpdate);
      EXPECT_EQ(sub->update.seq, expectSeq++);
    }
  }
  EXPECT_EQ(expectSeq, 21u);
}

/// Same via detach (the destructor path every LP takes).
TEST_F(WireFixture, DetachedSubscriberLeavesNoStaleLocalLink) {
  cb->attach(lp);
  const PublicationHandle h = cb->publishObjectClass(lp, "local.cls");
  {
    LogicalProcess sub{"sub"};
    cb->attach(sub);
    cb->subscribeObjectClass(sub, "local.cls");
    EXPECT_EQ(cb->channelCount(h), 1u);
  }  // ~LogicalProcess detaches and must scrub the publication table
  EXPECT_EQ(cb->channelCount(h), 0u);
  cb->updateAttributeValues(h, sampleAttrs(), 0.1);
  EXPECT_EQ(cb->stats().updatesLocalFastPath, 0u);
}

/// Regression: peer staging slots must be reclaimed on channel teardown.
/// 64 subscribers joining and resigning one after another (ephemeral-
/// address dynamic join) must leave the staging table sized for the peak
/// concurrent peer count — one — not for lifetime peer churn.
TEST_F(WireFixture, PeerBatchSlotsReclaimedOnChurn) {
  cb->attach(lp);
  const PublicationHandle h = cb->publishObjectClass(lp, "wire.cls");
  double now = 0.0;
  for (std::uint32_t i = 0; i < 64; ++i) {
    const net::NodeAddr peer{100 + i, 1};
    transport->inject(
        peer, encode(ChannelConnectionMsg{1000 + i, h, 100 + i, "wire.cls"}));
    cb->tick(now += 0.001);
    ASSERT_EQ(cb->channelCount(h), 1u);
    // An update pins the channel's staging slot (lazy resolution).
    cb->updateAttributeValues(h, sampleAttrs(), now);
    cb->tick(now += 0.001);
    EXPECT_LE(cb->peerSlotCount(), 1u);
    transport->inject(peer,
                      encode(ByeMsg{100 + i, /*fromPublisher=*/false}));
    cb->tick(now += 0.001);
    ASSERT_EQ(cb->channelCount(h), 0u);
  }
  EXPECT_EQ(cb->peerSlotCount(), 0u);
  EXPECT_LE(cb->peerSlotCapacity(), 2u);
  EXPECT_GE(cb->stats().batch.peerSlotsReclaimed, 64u);
}

/// The slot cached by a surviving channel must never be handed to another
/// peer while churn reclaims its neighbours.
TEST_F(WireFixture, PinnedSlotSurvivesNeighbourChurn) {
  const PublicationHandle h = publishWithTwoChannels();
  const AttributeSet attrs = sampleAttrs();
  cb->updateAttributeValues(h, attrs, 0.01);  // pins sub1's and sub2's slots
  cb->tick(0.01);
  transport->sent.clear();
  // sub2 resigns; a new peer joins; sub1 keeps publishing throughout.
  transport->inject(sub2, encode(ByeMsg{9, /*fromPublisher=*/false}));
  cb->tick(0.02);
  transport->inject({30, 1},
                    encode(ChannelConnectionMsg{79, h, 11, "wire.cls"}));
  cb->tick(0.03);
  transport->sent.clear();
  cb->updateAttributeValues(h, attrs, 0.04);
  cb->flushBatches();
  ASSERT_EQ(transport->sent.size(), 2u);
  // Both frames reach the right peers with the right channel ids.
  for (const auto& [dst, bytes] : transport->sent) {
    const auto msg = decode(bytes);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, MsgType::kUpdate);
    if (dst == sub1) {
      EXPECT_EQ(msg->update.channelId, 5u);
    } else {
      EXPECT_EQ(dst, (net::NodeAddr{30, 1}));
      EXPECT_EQ(msg->update.channelId, 11u);
    }
  }
  EXPECT_EQ(cb->peerSlotCount(), 2u);
}

}  // namespace
}  // namespace cod::core
