// Soak tests of kReliableOrdered virtual channels over the simulated LAN:
// zero-gap, in-order delivery at 25–55% loss with jitter-induced
// reordering, survival of loss bursts longer than the heartbeat interval,
// teardown/rediscovery when a burst exceeds the channel timeout, and the
// bounded-window degradation path.
#include "core/cluster.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace cod::core {
namespace {

class QosPub : public LogicalProcess {
 public:
  QosPub(std::string cls, net::QosClass qos)
      : LogicalProcess("pub"), cls_(std::move(cls)), qos_(qos) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.publishObjectClass(*this, cls_, qos_);
  }
  void send(double value, double ts) {
    AttributeSet a;
    a.set("v", value);
    backbone()->updateAttributeValues(handle, a, ts);
  }
  PublicationHandle handle = kInvalidHandle;

 private:
  std::string cls_;
  net::QosClass qos_;
};

class QosSub : public LogicalProcess {
 public:
  QosSub(std::string cls, net::QosClass qos)
      : LogicalProcess("sub"), cls_(std::move(cls)), qos_(qos) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.subscribeObjectClass(*this, cls_, qos_);
  }
  void reflectAttributeValues(const std::string&, const AttributeSet& attrs,
                              double timestamp) override {
    values.push_back(attrs.getDouble("v"));
    timestamps.push_back(timestamp);
  }
  SubscriptionHandle handle = kInvalidHandle;
  std::vector<double> values;
  std::vector<double> timestamps;

 private:
  std::string cls_;
  net::QosClass qos_;
};

/// Publish `count` updates one per `spacing` seconds, then drain until the
/// subscriber has `expect` values or `horizon` elapses.
void streamAndDrain(CodCluster& cluster, QosPub& pub, QosSub& sub, int count,
                    double spacing, std::size_t expect, double horizon) {
  for (int i = 0; i < count; ++i) {
    pub.send(i, cluster.now());
    cluster.step(spacing);
  }
  cluster.runUntil([&] { return sub.values.size() >= expect; },
                   cluster.now() + horizon);
}

void expectZeroGapInOrder(const QosSub& sub, int count) {
  ASSERT_EQ(sub.values.size(), static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    ASSERT_DOUBLE_EQ(sub.values[static_cast<std::size_t>(i)], i)
        << "gap or reorder at index " << i;
}

TEST(CbReliable, ZeroGapInOrderAt25PercentLossWithJitter) {
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.25;
  cfg.link.jitterSec = 500e-6;  // > latency: surviving packets reorder
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 10.0));

  constexpr int kCount = 300;
  streamAndDrain(cluster, pub, sub, kCount, 0.01, kCount, 20.0);
  expectZeroGapInOrder(sub, kCount);
  // The guarantee was earned, not lucky: losses were healed.
  EXPECT_GT(cbA.stats().reliable.retransmitsSent, 0u);
  EXPECT_GT(cbB.stats().reliable.nacksSent, 0u);
  EXPECT_GT(cbB.stats().reliable.gapsHealed, 0u);
  EXPECT_EQ(cbB.stats().reliable.gapsAbandoned, 0u);
}

TEST(CbReliable, ZeroGapInOrderAt55PercentLoss) {
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.55;  // the exemplar ReliableOrderTest's loss rate
  cfg.link.jitterSec = 300e-6;
  cfg.seed = 5;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 30.0));

  constexpr int kCount = 150;
  streamAndDrain(cluster, pub, sub, kCount, 0.01, kCount, 60.0);
  expectZeroGapInOrder(sub, kCount);
  EXPECT_EQ(cbB.stats().reliable.gapsAbandoned, 0u);
}

TEST(CbReliable, BurstPerTickBatchesHealUnderLoss) {
  // Three updates per tick ride one container datagram, so a drop now
  // costs a whole batch at once — the reliable layer must heal these
  // coarser losses just as it healed single frames.
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.25;
  cfg.link.jitterSec = 400e-6;
  cfg.seed = 9;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kReliableOrdered);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 10.0));

  constexpr int kBursts = 100;
  for (int i = 0; i < kBursts; ++i) {
    for (int j = 0; j < 3; ++j) pub.send(3 * i + j, cluster.now());
    cluster.step(0.01);
  }
  cluster.runUntil(
      [&] { return sub.values.size() >= static_cast<std::size_t>(3 * kBursts); },
      cluster.now() + 20.0);
  expectZeroGapInOrder(sub, 3 * kBursts);
  EXPECT_EQ(cbB.stats().reliable.gapsAbandoned, 0u);
  // The coalescer actually engaged (multi-frame containers went out).
  EXPECT_GT(cbA.stats().batch.datagramsCoalesced, 0u);
  EXPECT_GT(cbA.stats().batch.framesCoalesced,
            cbA.stats().batch.datagramsCoalesced);
}

TEST(CbReliable, BatchingDisabledStillHealsAt25PercentLoss) {
  // The un-batched wire path stays supported (interop with pre-batching
  // peers) and must keep its reliability guarantees.
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.25;
  cfg.link.jitterSec = 500e-6;
  cfg.cb.batch.enabled = false;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kReliableOrdered);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 10.0));

  constexpr int kCount = 200;
  streamAndDrain(cluster, pub, sub, kCount, 0.01, kCount, 20.0);
  expectZeroGapInOrder(sub, kCount);
  EXPECT_EQ(cbA.stats().batch.datagramsCoalesced, 0u);  // nothing boxed
  EXPECT_EQ(cbB.stats().reliable.gapsAbandoned, 0u);
}

TEST(CbReliable, BestEffortChannelOnSameLinkStillDrops) {
  // Contrast case: same lossy LAN, best-effort channel — gaps are expected
  // (newest-wins) while sequence order is still monotonic.
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.25;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("view", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("view", net::QosClass::kBestEffort);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 10.0));
  for (int i = 0; i < 200; ++i) {
    pub.send(i, cluster.now());
    cluster.step(0.01);
  }
  cluster.step(0.5);
  EXPECT_LT(sub.values.size(), 200u);  // loss is visible without QoS
  EXPECT_GT(sub.values.size(), 80u);
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);
  EXPECT_EQ(cbA.stats().reliable.retransmitsSent, 0u);  // no reliable cost
}

TEST(CbReliable, PublisherQosFloorUpgradesBestEffortSubscriber) {
  // The publication mandates reliability; the subscriber asks for best
  // effort and must still receive a lossless, ordered stream.
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.25;
  cfg.link.jitterSec = 300e-6;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kReliableOrdered);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kBestEffort);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 10.0));
  // Let the upgrade handshake (CHANNEL_ACK, possibly re-sent) settle so
  // the stream starts under the reliable regime.
  cluster.step(1.0);

  constexpr int kCount = 200;
  streamAndDrain(cluster, pub, sub, kCount, 0.01, kCount, 20.0);
  expectZeroGapInOrder(sub, kCount);
}

TEST(CbReliable, SurvivesLossBurstLongerThanHeartbeatInterval) {
  // A 1.5 s total blackout exceeds the 0.5 s heartbeat interval several
  // times over but stays under the 3 s channel timeout: the channel must
  // not tear down, and every update sent into the blackout must arrive
  // after it lifts.
  CodCluster cluster;
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 5.0));

  int sent = 0;
  auto sendSome = [&](int n, double spacing) {
    for (int i = 0; i < n; ++i) {
      pub.send(sent++, cluster.now());
      cluster.step(spacing);
    }
  };
  sendSome(20, 0.02);

  net::LinkModel dead;
  dead.lossRate = 1.0;
  cluster.network().setLink(0, 1, dead);
  sendSome(30, 0.05);  // 1.5 s of publishing into the void
  cluster.network().setLink(0, 1, net::LinkModel{});

  cluster.runUntil(
      [&] { return sub.values.size() >= static_cast<std::size_t>(sent); },
      cluster.now() + 10.0);
  expectZeroGapInOrder(sub, sent);
  EXPECT_EQ(cbA.stats().channelsTimedOut, 0u);
  EXPECT_EQ(cbB.stats().channelsTimedOut, 0u);
}

TEST(CbReliable, BurstBeyondChannelTimeoutTearsDownAndRediscovers) {
  // Past the channel timeout the channel is gone — rediscovery must bring
  // a fresh reliable channel up, and streaming on it is again lossless.
  CodCluster cluster;
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 5.0));

  cluster.network().setPartitioned(0, 1, true);
  cluster.step(cbA.config().channelTimeoutSec + 1.5);
  EXPECT_EQ(cbB.sourceCount(sub.handle), 0u);
  EXPECT_GE(cbB.stats().channelsTimedOut, 1u);

  cluster.network().setPartitioned(0, 1, false);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); },
                               cluster.now() + 10.0));
  const std::size_t before = sub.values.size();
  for (int i = 0; i < 50; ++i) {
    pub.send(1000 + i, cluster.now());
    cluster.step(0.01);
  }
  cluster.runUntil([&] { return sub.values.size() >= before + 50; },
                   cluster.now() + 5.0);
  ASSERT_EQ(sub.values.size(), before + 50);
  for (int i = 0; i < 50; ++i)
    EXPECT_DOUBLE_EQ(sub.values[before + static_cast<std::size_t>(i)],
                     1000 + i);
}

TEST(CbReliable, TinySendWindowDegradesToCountedLossNotLivelock) {
  // Publish far more than the retransmit window holds into a blackout:
  // the overflowed frames are unrecoverable, and the publisher must order
  // the subscriber past the hole instead of NACK-looping forever.
  CodCluster::Config cfg;
  cfg.cb.reliable.sendWindowFrames = 8;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 5.0));

  net::LinkModel dead;
  dead.lossRate = 1.0;
  cluster.network().setLink(0, 1, dead);
  for (int i = 0; i < 40; ++i) {
    pub.send(i, cluster.now());
    cluster.step(0.01);
  }
  cluster.network().setLink(0, 1, net::LinkModel{});
  // Stream resumes: later values arrive despite the unrecoverable hole.
  for (int i = 40; i < 60; ++i) {
    pub.send(i, cluster.now());
    cluster.step(0.01);
  }
  ASSERT_TRUE(cluster.runUntil(
      [&] {
        return !sub.values.empty() && sub.values.back() == 59.0;
      },
      cluster.now() + 10.0));
  EXPECT_GT(cbA.stats().reliable.sendWindowEvictions, 0u);
  EXPECT_GT(cbB.stats().reliable.gapsAbandoned, 0u);
  // Order is still strict even across the abandoned hole.
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);
}

TEST(CbReliable, MixedFanOutSharesOneWindowAcrossReliableChannels) {
  // One publisher, two reliable subscribers on different computers plus a
  // best-effort one: the retransmit window is shared (frames buffered
  // once) and each reliable subscriber independently recovers its own
  // losses.
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.3;
  cfg.link.jitterSec = 300e-6;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("pub");
  auto& cbB = cluster.addComputer("r1");
  auto& cbC = cluster.addComputer("r2");
  auto& cbD = cluster.addComputer("be");
  QosPub pub("score", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub r1("score", net::QosClass::kReliableOrdered);
  r1.bind(cbB);
  QosSub r2("score", net::QosClass::kReliableOrdered);
  r2.bind(cbC);
  QosSub be("score", net::QosClass::kBestEffort);
  be.bind(cbD);
  ASSERT_TRUE(cluster.runUntil(
      [&] {
        return cbB.connected(r1.handle) && cbC.connected(r2.handle) &&
               cbD.connected(be.handle);
      },
      20.0));

  constexpr int kCount = 150;
  for (int i = 0; i < kCount; ++i) {
    pub.send(i, cluster.now());
    cluster.step(0.01);
  }
  cluster.runUntil(
      [&] {
        return r1.values.size() >= kCount && r2.values.size() >= kCount;
      },
      cluster.now() + 30.0);
  expectZeroGapInOrder(r1, kCount);
  expectZeroGapInOrder(r2, kCount);
  // Shared window: frames buffered once per update, not once per channel.
  EXPECT_LE(cbA.stats().reliable.framesBuffered,
            static_cast<std::uint64_t>(kCount));
  // The best-effort subscriber is untouched by the QoS of its siblings.
  EXPECT_LT(be.values.size(), static_cast<std::size_t>(kCount));
}

TEST(CbReliable, TimestampsAndOrderSurviveRetransmitPath) {
  CodCluster::Config cfg;
  cfg.link.lossRate = 0.4;
  cfg.seed = 9;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 15.0));
  std::vector<double> sentTs;
  for (int i = 0; i < 100; ++i) {
    sentTs.push_back(cluster.now());
    pub.send(i, cluster.now());
    cluster.step(0.01);
  }
  cluster.runUntil([&] { return sub.values.size() >= 100; },
                   cluster.now() + 30.0);
  ASSERT_EQ(sub.values.size(), 100u);
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(sub.values[i], static_cast<double>(i));
    EXPECT_DOUBLE_EQ(sub.timestamps[i], sentTs[i]);  // retransmit kept ts
  }
}

TEST(CbReliable, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    CodCluster::Config cfg;
    cfg.seed = seed;
    cfg.link.lossRate = 0.35;
    cfg.link.jitterSec = 300e-6;
    CodCluster cluster(cfg);
    auto& cbA = cluster.addComputer("a");
    auto& cbB = cluster.addComputer("b");
    QosPub pub("det", net::QosClass::kBestEffort);
    pub.bind(cbA);
    QosSub sub("det", net::QosClass::kReliableOrdered);
    sub.bind(cbB);
    cluster.runUntil([&] { return cbB.connected(sub.handle); }, 15.0);
    for (int i = 0; i < 80; ++i) {
      pub.send(i, cluster.now());
      cluster.step(0.01);
    }
    cluster.runUntil([&] { return sub.values.size() >= 80; },
                     cluster.now() + 20.0);
    return std::make_tuple(sub.values.size(),
                           cbA.stats().reliable.retransmitsSent,
                           cbB.stats().reliable.nacksSent);
  };
  EXPECT_EQ(run(42), run(42));
}

}  // namespace
}  // namespace cod::core
