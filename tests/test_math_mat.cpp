#include "math/mat.hpp"

#include <gtest/gtest.h>

namespace cod::math {
namespace {

void expectNear(const Vec3& a, const Vec3& b, double tol = 1e-9) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(Mat3, FromQuatMatchesQuatRotate) {
  const Quat q = Quat::fromEuler(0.3, -0.5, 1.1);
  const Mat3 m = Mat3::fromQuat(q);
  const Vec3 v{1.5, -2.0, 0.7};
  expectNear(m * v, q.rotate(v));
}

TEST(Mat3, RotationDeterminantIsOne) {
  const Mat3 m = Mat3::fromQuat(Quat::fromAxisAngle({1, 1, 0}, 0.9));
  EXPECT_NEAR(m.determinant(), 1.0, 1e-12);
}

TEST(Mat3, TransposeOfRotationIsInverse) {
  const Quat q = Quat::fromAxisAngle({0.2, 0.5, 0.8}, 1.3);
  const Mat3 m = Mat3::fromQuat(q);
  const Mat3 mt = m.transposed();
  const Vec3 v{3, -1, 2};
  expectNear(mt * (m * v), v);
}

TEST(Mat4, TranslationMovesPoints) {
  const Mat4 t = Mat4::translation({1, 2, 3});
  expectNear(t.transformPoint({0, 0, 0}), {1, 2, 3});
  // Directions are unaffected by translation.
  expectNear(t.transformDir({1, 0, 0}), {1, 0, 0});
}

TEST(Mat4, ScaleScalesPoints) {
  const Mat4 s = Mat4::scale({2, 3, 4});
  expectNear(s.transformPoint({1, 1, 1}), {2, 3, 4});
}

TEST(Mat4, RigidComposesRotationThenTranslation) {
  const Quat q = Quat::fromAxisAngle({0, 0, 1}, kPi / 2);
  const Mat4 m = Mat4::rigid(q, {10, 0, 0});
  expectNear(m.transformPoint({1, 0, 0}), {10, 1, 0});
}

TEST(Mat4, RigidInverseUndoes) {
  const Mat4 m = Mat4::rigid(Quat::fromEuler(0.2, 0.4, -0.9), {5, -3, 2});
  const Mat4 inv = m.rigidInverse();
  const Vec3 p{1.1, 2.2, 3.3};
  expectNear(inv.transformPoint(m.transformPoint(p)), p);
}

TEST(Mat4, MultiplicationAssociatesWithTransform) {
  const Mat4 a = Mat4::translation({1, 0, 0});
  const Mat4 b = Mat4::scale({2, 2, 2});
  const Vec3 p{1, 1, 1};
  // (a*b) p == a (b p)
  expectNear((a * b).transformPoint(p), a.transformPoint(b.transformPoint(p)));
}

TEST(Mat4, LookAtMapsTargetToNegativeZ) {
  const Mat4 v = Mat4::lookAt({0, 0, 0}, {10, 0, 0}, {0, 0, 1});
  const Vec3 t = v.transformPoint({10, 0, 0});
  EXPECT_NEAR(t.x, 0.0, 1e-9);
  EXPECT_NEAR(t.y, 0.0, 1e-9);
  EXPECT_NEAR(t.z, -10.0, 1e-9);  // camera looks down -z in view space
}

TEST(Mat4, LookAtKeepsEyeAtOrigin) {
  const Mat4 v = Mat4::lookAt({3, 4, 5}, {0, 0, 0}, {0, 0, 1});
  expectNear(v.transformPoint({3, 4, 5}), {0, 0, 0});
}

TEST(Mat4, PerspectiveMapsNearFarToClipRange) {
  const double n = 0.5, f = 100.0;
  const Mat4 p = Mat4::perspective(deg2rad(60.0), 1.5, n, f);
  // Points on the optical axis at the near/far planes map to z/w = -1/+1.
  const Vec4 nearPt = p * Vec4{0, 0, -n, 1};
  const Vec4 farPt = p * Vec4{0, 0, -f, 1};
  EXPECT_NEAR(nearPt.z / nearPt.w, -1.0, 1e-9);
  EXPECT_NEAR(farPt.z / farPt.w, 1.0, 1e-9);
}

TEST(Mat4, PerspectiveFovEdges) {
  const double fovY = deg2rad(90.0);
  const Mat4 p = Mat4::perspective(fovY, 1.0, 1.0, 10.0);
  // At 90 deg fov and aspect 1, the point (z, 0, -z) lands on x/w = 1.
  const Vec4 edge = p * Vec4{2.0, 0, -2.0, 1};
  EXPECT_NEAR(edge.x / edge.w, 1.0, 1e-9);
}

TEST(Mat4, TransposedSwapsIndices) {
  Mat4 m;
  m.m[0][3] = 7.0;
  EXPECT_DOUBLE_EQ(m.transposed().m[3][0], 7.0);
}

}  // namespace
}  // namespace cod::math
