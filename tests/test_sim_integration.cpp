// Whole-system integration: the paper's eight-computer simulator.
#include <gtest/gtest.h>

#include "sim/simulator_app.hpp"

namespace cod::sim {
namespace {

/// Small framebuffers + compact course keep these tests quick while still
/// exercising every module and every virtual channel.
CraneSimulatorApp::Config fastConfig() {
  CraneSimulatorApp::Config cfg;
  cfg.course = scenario::compactCourse();
  cfg.fbWidth = 32;
  cfg.fbHeight = 24;
  return cfg;
}

TEST(Integration, AllModulesWireUp) {
  CraneSimulatorApp app(fastConfig());
  EXPECT_TRUE(app.waitUntilWired(10.0));
  EXPECT_EQ(app.cluster().size(), 8u);  // the paper's rack
  app.step(2.0);
  EXPECT_GT(app.display(0).framesRendered(), 0u);
  EXPECT_GT(app.display(1).framesRendered(), 0u);
  EXPECT_GT(app.display(2).framesRendered(), 0u);
  EXPECT_GT(app.syncServer().swapsIssued(), 0u);
  EXPECT_GT(app.instructor().stateUpdatesSeen(), 0u);
  EXPECT_GT(app.platform().posesPublished(), 0u);
  EXPECT_GT(app.dashboard().controlFramesSent(), 0u);
}

TEST(Integration, CarefulTraineePassesTheExam) {
  CraneSimulatorApp app(fastConfig());
  app.waitUntilWired(10.0);
  ASSERT_TRUE(app.runExam(600.0)) << "exam did not finish";
  const scenario::ScoreSheet& sheet = app.scenario().exam().score();
  EXPECT_EQ(sheet.phase, scenario::ExamPhase::kPassed);
  EXPECT_GE(sheet.total, 90.0);
  EXPECT_EQ(app.dynamics().barHitsEmitted(), 0u);
}

TEST(Integration, SloppyTraineeHitsBarsAndLosesPoints) {
  CraneSimulatorApp::Config cfg = fastConfig();
  cfg.operatorProfile = scenario::OperatorProfile::sloppy();
  CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);
  app.runExam(600.0);
  EXPECT_GT(app.dynamics().barHitsEmitted(), 0u);
  EXPECT_LT(app.scenario().exam().score().total, 95.0);
  // Each bar hit reached the audio module as a collision sound.
  EXPECT_EQ(app.audio().collisionSoundsPlayed(),
            app.dynamics().barHitsEmitted());
}

TEST(Integration, DisplaysStayInLockstepUnderTheBarrier) {
  CraneSimulatorApp app(fastConfig());
  app.waitUntilWired(10.0);
  app.step(5.0);
  const auto f0 = app.display(0).framesRendered();
  const auto f1 = app.display(1).framesRendered();
  const auto f2 = app.display(2).framesRendered();
  EXPECT_NEAR(static_cast<double>(f0), static_cast<double>(f1), 1.0);
  EXPECT_NEAR(static_cast<double>(f1), static_cast<double>(f2), 1.0);
  // ~16 fps of virtual time.
  EXPECT_GT(f0, 60u);
}

TEST(Integration, FreeRunWithoutSyncServerAlsoWorks) {
  CraneSimulatorApp::Config cfg = fastConfig();
  cfg.useSyncServer = false;
  CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);
  app.step(3.0);
  EXPECT_GT(app.display(0).framesRendered(), 40u);
  EXPECT_EQ(app.syncServer().swapsIssued(), 0u);
}

TEST(Integration, DynamicDisplayJoinWithoutRestart) {
  CraneSimulatorApp::Config cfg = fastConfig();
  cfg.useSyncServer = false;
  CraneSimulatorApp app(cfg);
  app.waitUntilWired(10.0);
  app.step(2.0);
  // Hot-plug a fourth display (§2.3).
  auto& cb = app.cluster().addComputer("display-extra");
  VisualDisplayModule::Config dc;
  dc.channel = 1;
  dc.useSyncServer = false;
  dc.fbWidth = 32;
  dc.fbHeight = 24;
  VisualDisplayModule extra(app.config().course, dc);
  extra.bind(cb);
  app.step(3.0);
  EXPECT_GT(extra.framesRendered(), 30u);
  EXPECT_GT(cb.stats().channelsEstablishedIn, 0u);
}

TEST(Integration, StatusWindowShowsLiveCraneData) {
  CraneSimulatorApp app(fastConfig());
  app.waitUntilWired(10.0);
  app.step(20.0);  // trainee is driving by now
  const StatusWindow& w = app.instructor().statusWindow();
  // The instructor's numbers match the authoritative dynamics state.
  EXPECT_NEAR(w.boomElongationM, app.dynamics().craneState().boomLengthM,
              0.5);
  EXPECT_NEAR(w.cableLengthM, app.dynamics().craneState().cableLengthM, 0.5);
  EXPECT_FALSE(w.renderText().empty());
}

TEST(Integration, AudioTracksEngine) {
  CraneSimulatorApp app(fastConfig());
  app.waitUntilWired(10.0);
  app.step(5.0);  // ignition happens immediately; engine spools up
  EXPECT_GT(app.audio().engine().mixer().activeChannels(), 0u);
  EXPECT_GT(app.audio().lastChunkRms(), 0.001);
}

TEST(Integration, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    CraneSimulatorApp app(fastConfig());
    app.waitUntilWired(10.0);
    app.step(30.0);
    return std::make_tuple(app.dynamics().craneState().carrierPosition.x,
                           app.dynamics().craneState().carrierPosition.y,
                           app.display(0).framesRendered(),
                           app.scenario().exam().score().total);
  };
  EXPECT_EQ(run(), run());
}

TEST(Integration, ExamFinishesWithinPaperishWallTime) {
  // Guard against pathological slowdowns: a full exam on the compact course
  // takes bounded virtual time.
  CraneSimulatorApp app(fastConfig());
  app.waitUntilWired(10.0);
  ASSERT_TRUE(app.runExam(400.0));
  EXPECT_LT(app.scenario().exam().score().elapsedSec, 300.0);
}

}  // namespace
}  // namespace cod::sim
