#include "physics/pendulum.hpp"
#include "physics/wind.hpp"

#include <gtest/gtest.h>

namespace cod::physics {
namespace {

TEST(Wind, CalmByDefault) {
  Wind w;
  w.step(1.0);
  EXPECT_NEAR(w.speed(), 0.0, 1e-9);
  EXPECT_EQ(w.dragForce(1.0), math::Vec3{});
}

TEST(Wind, MeanSpeedAndDirection) {
  WindParams p;
  p.meanSpeedMps = 8.0;
  p.meanDirectionRad = 0.0;
  p.gustIntensity = 0.0;
  p.veerRateRadPerS = 0.0;
  Wind w(p, 1);
  w.step(0.1);
  EXPECT_NEAR(w.velocity().x, 8.0, 1e-9);
  EXPECT_NEAR(w.velocity().y, 0.0, 1e-9);
  w.setMean(5.0, math::kPi / 2);
  w.step(0.1);
  EXPECT_NEAR(w.velocity().x, 0.0, 1e-9);
  EXPECT_NEAR(w.velocity().y, 5.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.velocity().z, 0.0);
}

TEST(Wind, GustsVaryAroundTheMean) {
  WindParams p;
  p.meanSpeedMps = 10.0;
  p.gustIntensity = 0.3;
  Wind w(p, 2);
  double mn = 1e9, mx = -1e9, sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    w.step(0.05);
    const double s = w.speed();
    mn = std::min(mn, s);
    mx = std::max(mx, s);
    sum += s;
  }
  EXPECT_LT(mn, 9.0);   // lulls
  EXPECT_GT(mx, 11.0);  // gusts
  EXPECT_NEAR(sum / n, 10.0, 1.0);
}

TEST(Wind, DeterministicInSeed) {
  WindParams p;
  p.meanSpeedMps = 6.0;
  Wind a(p, 7), b(p, 7), c(p, 8);
  bool anyDiff = false;
  for (int i = 0; i < 500; ++i) {
    a.step(0.05);
    b.step(0.05);
    c.step(0.05);
    EXPECT_EQ(a.velocity(), b.velocity());
    anyDiff |= !(a.velocity() == c.velocity());
  }
  EXPECT_TRUE(anyDiff);
}

TEST(Wind, DragForceQuadraticInSpeed) {
  WindParams p;
  p.gustIntensity = 0.0;
  p.veerRateRadPerS = 0.0;
  p.meanSpeedMps = 5.0;
  Wind w5(p, 1);
  p.meanSpeedMps = 10.0;
  Wind w10(p, 1);
  const double f5 = w5.dragForce(1.0).norm();
  const double f10 = w10.dragForce(1.0).norm();
  EXPECT_NEAR(f10 / f5, 4.0, 1e-6);
  // And linear in area.
  EXPECT_NEAR(w10.dragForce(2.0).norm() / f10, 2.0, 1e-9);
}

TEST(Wind, PushesPendulumDownwind) {
  CableParams cp;
  cp.cargoMassKg = 500.0;
  CablePendulum pend(cp);
  pend.reset({0, 0, 10}, 6.0);
  WindParams wp;
  wp.meanSpeedMps = 12.0;
  wp.gustIntensity = 0.0;
  wp.veerRateRadPerS = 0.0;
  Wind wind(wp, 3);
  for (int i = 0; i < 2000; ++i) {
    wind.step(0.01);
    pend.applyForce(wind.dragForce(1.2));
    pend.step(0.01);
  }
  // The bob settles deflected downwind (+x), not hanging straight.
  EXPECT_GT(pend.bobPosition().x, 0.1);
  EXPECT_GT(pend.swingAngle(), 0.01);
}

}  // namespace
}  // namespace cod::physics
