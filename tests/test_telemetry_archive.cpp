// TelemetryArchive durability: the black box must survive everything the
// box it flies in does — SIGKILL mid-write, truncation at any byte,
// corrupt frames, rotation, restarts — and a reader must always get every
// record the writer completed.
#include "telemetry/archive.hpp"

#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "telemetry/node_telemetry.hpp"

namespace cod::telemetry {
namespace {

/// Unique per-test scratch path (ctest runs suites in parallel from one
/// working directory), removed with its rotated segments on destruction.
struct ScratchPath {
  explicit ScratchPath(const std::string& tag) {
    path = "archive_test_" + tag + "_" + std::to_string(::getpid()) + ".bin";
  }
  ~ScratchPath() {
    std::remove(path.c_str());
    for (int i = 1; i < 64; ++i)
      std::remove((path + "." + std::to_string(i)).c_str());
  }
  std::string path;
};

std::vector<std::uint8_t> fileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>((std::istreambuf_iterator<char>(in)),
                                   std::istreambuf_iterator<char>());
}

void writeBytes(const std::string& path,
                const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

std::vector<std::uint8_t> sampleSnapshot(std::uint64_t seq) {
  NodeTelemetry t;
  t.node = "dyn";
  t.seq = seq;
  t.nodeTimeSec = static_cast<double>(seq);
  t.cb.updatesSent = 10 * seq;
  return encodeTelemetry(t);
}

TEST(Crc32, KnownVectors) {
  // The IEEE 802.3 check value: CRC-32 of "123456789" is 0xCBF43926.
  const std::uint8_t check[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32({}), 0u);
}

TEST(TelemetryArchive, AllRecordTypesRoundTrip) {
  ScratchPath sp("roundtrip");
  {
    TelemetryArchive::Config cfg;
    cfg.path = sp.path;
    TelemetryArchive ar(cfg);
    ASSERT_TRUE(ar.ok());
    ar.appendSnapshot(sampleSnapshot(1), 0.5);
    ar.appendAlarm(3, 2, 0.9, "dyn", "latency p99 1200ms", 1.0);
    ar.appendTraceDumpMarker("out/dyn.trace.json", 1.5);
    ar.appendLivenessPing("dyn", 2.0);
    EXPECT_EQ(ar.recordsWritten(), 4u);
    EXPECT_GT(ar.bytesWritten(), 0u);
  }
  ArchiveReader rd(sp.path);
  const auto recs = rd.readAll();
  ASSERT_EQ(recs.size(), 4u);
  EXPECT_EQ(rd.recordsSkipped(), 0u);
  EXPECT_EQ(rd.tornTails(), 0u);

  EXPECT_EQ(recs[0].type, ArchiveRecordType::kSnapshot);
  EXPECT_EQ(recs[0].monoSec, 0.5);
  EXPECT_GT(recs[0].wallSec, 0.0);
  const auto t = decodeTelemetry(recs[0].snapshot);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->node, "dyn");
  EXPECT_EQ(t->seq, 1u);

  EXPECT_EQ(recs[1].type, ArchiveRecordType::kAlarmEdge);
  EXPECT_EQ(recs[1].alarmKind, 3);
  EXPECT_EQ(recs[1].alarmSeverity, 2);
  EXPECT_EQ(recs[1].alarmTimeSec, 0.9);
  EXPECT_EQ(recs[1].node, "dyn");
  EXPECT_EQ(recs[1].text, "latency p99 1200ms");

  EXPECT_EQ(recs[2].type, ArchiveRecordType::kTraceDumpMarker);
  EXPECT_EQ(recs[2].text, "out/dyn.trace.json");

  EXPECT_EQ(recs[3].type, ArchiveRecordType::kLivenessPing);
  EXPECT_EQ(recs[3].node, "dyn");
  EXPECT_EQ(recs[3].monoSec, 2.0);
}

TEST(TelemetryArchive, TornTailAtEveryByteOffsetIsACleanStop) {
  ScratchPath sp("torn");
  {
    TelemetryArchive::Config cfg;
    cfg.path = sp.path;
    TelemetryArchive ar(cfg);
    for (std::uint64_t s = 1; s <= 3; ++s) ar.appendSnapshot(sampleSnapshot(s), 0.5 * static_cast<double>(s));
  }
  const std::vector<std::uint8_t> full = fileBytes(sp.path);
  ASSERT_GT(full.size(), 5u);
  {
    ArchiveReader probe(sp.path);
    ASSERT_EQ(probe.readAll().size(), 3u);
  }
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    writeBytes(sp.path, std::vector<std::uint8_t>(full.begin(),
                                                  full.begin() + cut));
    ArchiveReader rd(sp.path);
    const auto recs = rd.readAll();  // must never crash or loop
    // A truncated file yields a PREFIX of the written records, each one
    // intact (CRC guarantees no partially-applied record).
    ASSERT_LE(recs.size(), 3u) << "cut at " << cut;
    for (std::size_t i = 0; i < recs.size(); ++i) {
      const auto t = decodeTelemetry(recs[i].snapshot);
      ASSERT_TRUE(t.has_value()) << "cut at " << cut;
      EXPECT_EQ(t->seq, i + 1) << "cut at " << cut;
    }
    EXPECT_EQ(rd.recordsSkipped(), 0u) << "cut at " << cut;
    if (cut == full.size()) {
      EXPECT_EQ(recs.size(), 3u);
      EXPECT_EQ(rd.tornTails(), 0u);
    }
  }
  writeBytes(sp.path, full);  // restore for ScratchPath cleanup symmetry
}

TEST(TelemetryArchive, CrcCorruptFrameIsSkippedNotFatal) {
  ScratchPath sp("crc");
  {
    TelemetryArchive::Config cfg;
    cfg.path = sp.path;
    TelemetryArchive ar(cfg);
    for (std::uint64_t s = 1; s <= 3; ++s)
      ar.appendSnapshot(sampleSnapshot(s), static_cast<double>(s));
  }
  auto bytes = fileBytes(sp.path);
  // Flip one byte in the MIDDLE record's payload (well past the first
  // record: header 5 + first frame). Find the second frame start by
  // re-walking lengths.
  std::size_t off = 5;  // magic + version
  const auto frameLen = [&](std::size_t at) {
    return static_cast<std::size_t>(bytes[at]) |
           (static_cast<std::size_t>(bytes[at + 1]) << 8) |
           (static_cast<std::size_t>(bytes[at + 2]) << 16) |
           (static_cast<std::size_t>(bytes[at + 3]) << 24);
  };
  off += 8 + frameLen(off);          // past record 1
  const std::size_t mid = off + 8 + frameLen(off) / 2;
  bytes[mid] ^= 0xFF;
  writeBytes(sp.path, bytes);

  ArchiveReader rd(sp.path);
  const auto recs = rd.readAll();
  ASSERT_EQ(recs.size(), 2u);  // records 1 and 3 survive
  EXPECT_EQ(rd.recordsSkipped(), 1u);
  EXPECT_EQ(rd.tornTails(), 0u);
  EXPECT_EQ(decodeTelemetry(recs[0].snapshot)->seq, 1u);
  EXPECT_EQ(decodeTelemetry(recs[1].snapshot)->seq, 3u);
}

TEST(TelemetryArchive, UnknownRecordTypeIsSkippedForForwardCompat) {
  ScratchPath sp("fwd");
  {
    TelemetryArchive::Config cfg;
    cfg.path = sp.path;
    TelemetryArchive ar(cfg);
    ArchiveRecord rec;
    rec.type = static_cast<ArchiveRecordType>(200);  // from the future
    rec.monoSec = 1.0;
    rec.wallSec = 2.0;
    ar.append(rec);
    ar.appendLivenessPing("dyn", 3.0);
  }
  ArchiveReader rd(sp.path);
  const auto recs = rd.readAll();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].type, ArchiveRecordType::kLivenessPing);
  EXPECT_EQ(rd.recordsSkipped(), 1u);
}

TEST(TelemetryArchive, RotationKeepsNewestBoundsDiskAndReadsInOrder) {
  ScratchPath sp("rot");
  TelemetryArchive::Config cfg;
  cfg.path = sp.path;
  cfg.segmentBytes = 2048;  // rotate every ~15 snapshot records
  cfg.maxSegments = 2;
  std::uint64_t written = 0;
  std::uint64_t rotations = 0;
  {
    TelemetryArchive ar(cfg);
    for (std::uint64_t s = 1; s <= 200; ++s) {
      ar.appendSnapshot(sampleSnapshot(s), static_cast<double>(s));
      ++written;
    }
    rotations = ar.segmentsRotated();
    EXPECT_GT(rotations, cfg.maxSegments);  // old segments were deleted
  }
  ArchiveReader rd(sp.path);
  const auto recs = rd.readAll();
  // The ring holds the newest records: a strict suffix ending at seq 200,
  // contiguous and in write order across the segment boundaries.
  ASSERT_GT(recs.size(), 0u);
  ASSERT_LT(recs.size(), written);  // oldest really were dropped
  EXPECT_EQ(rd.segmentsRead(), cfg.maxSegments + 1);  // ring + active
  std::uint64_t expect = decodeTelemetry(recs.front().snapshot)->seq;
  for (const ArchiveRecord& rec : recs) {
    const auto t = decodeTelemetry(rec.snapshot);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->seq, expect);
    ++expect;
  }
  EXPECT_EQ(expect - 1, 200u);
}

TEST(TelemetryArchive, ReopenRotatesOldActiveSegmentInsteadOfOverwriting) {
  ScratchPath sp("reopen");
  TelemetryArchive::Config cfg;
  cfg.path = sp.path;
  {
    TelemetryArchive ar(cfg);
    ar.appendSnapshot(sampleSnapshot(1), 1.0);
  }
  {
    // A restarted recorder must not clobber the first incarnation's data.
    TelemetryArchive ar(cfg);
    ar.appendSnapshot(sampleSnapshot(2), 2.0);
  }
  ArchiveReader rd(sp.path);
  const auto recs = rd.readAll();
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(rd.segmentsRead(), 2u);
  EXPECT_EQ(decodeTelemetry(recs[0].snapshot)->seq, 1u);
  EXPECT_EQ(decodeTelemetry(recs[1].snapshot)->seq, 2u);
}

TEST(TelemetryArchive, UnwritablePathDegradesToNoOps) {
  TelemetryArchive::Config cfg;
  cfg.path = "no-such-dir-xyzzy/arc.bin";
  TelemetryArchive ar(cfg);
  EXPECT_FALSE(ar.ok());
  ar.appendSnapshot(sampleSnapshot(1), 1.0);  // must not crash
  ar.appendLivenessPing("dyn", 2.0);
  EXPECT_EQ(ar.recordsWritten(), 0u);
}

TEST(TelemetryArchive, SigkillMidWriteNeverPoisonsTheFile) {
  // A writer killed at an arbitrary moment (the soak driver's SIGKILL,
  // a power cut) leaves at most one torn record. Fork children that
  // append as fast as they can, kill each at a slightly different age,
  // and require every surviving file to read back cleanly: a contiguous
  // seq prefix, no skipped frames, at most one torn tail.
  for (int round = 0; round < 4; ++round) {
    ScratchPath sp("kill" + std::to_string(round));
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      TelemetryArchive::Config cfg;
      cfg.path = sp.path;
      TelemetryArchive ar(cfg);
      for (std::uint64_t s = 1;; ++s)
        ar.appendSnapshot(sampleSnapshot(s), static_cast<double>(s));
      // unreachable
    }
    // Let the child get some appends out, then kill it mid-stride.
    ::usleep(20000 + 17000 * round);
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);

    ArchiveReader rd(sp.path);
    const auto recs = rd.readAll();
    ASSERT_GT(recs.size(), 0u) << "round " << round;
    EXPECT_EQ(rd.recordsSkipped(), 0u) << "round " << round;
    EXPECT_LE(rd.tornTails(), 1u) << "round " << round;
    std::uint64_t expect = 1;
    for (const ArchiveRecord& rec : recs) {
      const auto t = decodeTelemetry(rec.snapshot);
      ASSERT_TRUE(t.has_value()) << "round " << round;
      EXPECT_EQ(t->seq, expect) << "round " << round;
      ++expect;
    }
  }
}

}  // namespace
}  // namespace cod::telemetry
