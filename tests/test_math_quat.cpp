#include "math/quat.hpp"

#include <gtest/gtest.h>

namespace cod::math {
namespace {

void expectNear(const Vec3& a, const Vec3& b, double tol = 1e-9) {
  EXPECT_NEAR(a.x, b.x, tol);
  EXPECT_NEAR(a.y, b.y, tol);
  EXPECT_NEAR(a.z, b.z, tol);
}

TEST(Quat, IdentityRotatesNothing) {
  const Quat q;
  expectNear(q.rotate({1, 2, 3}), {1, 2, 3});
  EXPECT_DOUBLE_EQ(q.angle(), 0.0);
}

TEST(Quat, AxisAngleQuarterTurnZ) {
  const Quat q = Quat::fromAxisAngle({0, 0, 1}, kPi / 2);
  expectNear(q.rotate({1, 0, 0}), {0, 1, 0});
  expectNear(q.rotate({0, 1, 0}), {-1, 0, 0});
  expectNear(q.rotate({0, 0, 1}), {0, 0, 1});
}

TEST(Quat, RotationPreservesLength) {
  const Quat q = Quat::fromAxisAngle({1, 2, 3}, 1.234);
  const Vec3 v{-4, 5, 0.5};
  EXPECT_NEAR(q.rotate(v).norm(), v.norm(), 1e-12);
}

TEST(Quat, CompositionMatchesSequentialRotation) {
  const Quat a = Quat::fromAxisAngle({0, 0, 1}, 0.7);
  const Quat b = Quat::fromAxisAngle({1, 0, 0}, -1.1);
  const Vec3 v{1, 2, 3};
  expectNear((a * b).rotate(v), a.rotate(b.rotate(v)), 1e-12);
}

TEST(Quat, ConjugateInverts) {
  const Quat q = Quat::fromAxisAngle({0.3, -0.4, 0.86}, 2.1);
  const Vec3 v{5, -6, 7};
  expectNear(q.conjugate().rotate(q.rotate(v)), v, 1e-12);
}

TEST(Quat, AngleOfAxisAngle) {
  for (const double a : {0.1, 0.5, 1.0, 2.0, 3.0}) {
    const Quat q = Quat::fromAxisAngle({0, 1, 0}, a);
    EXPECT_NEAR(q.angle(), a, 1e-12);
  }
}

/// Euler round trip across the non-degenerate range.
class EulerRoundTrip
    : public ::testing::TestWithParam<std::tuple<double, double, double>> {};

TEST_P(EulerRoundTrip, FromToEuler) {
  const auto [roll, pitch, yaw] = GetParam();
  const Quat q = Quat::fromEuler(roll, pitch, yaw);
  const Vec3 e = q.toEuler();
  EXPECT_NEAR(e.x, roll, 1e-9);
  EXPECT_NEAR(e.y, pitch, 1e-9);
  EXPECT_NEAR(e.z, yaw, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EulerRoundTrip,
    ::testing::Combine(::testing::Values(-1.0, -0.2, 0.0, 0.4, 1.2),
                       ::testing::Values(-1.2, -0.3, 0.0, 0.5, 1.3),
                       ::testing::Values(-2.5, 0.0, 0.9, 2.8)));

TEST(Quat, EulerGimbalLockDoesNotCrash) {
  const Quat q = Quat::fromEuler(0.3, kPi / 2, 0.7);
  const Vec3 e = q.toEuler();
  EXPECT_NEAR(e.y, kPi / 2, 1e-6);
}

TEST(Slerp, Endpoints) {
  const Quat a = Quat::fromAxisAngle({0, 0, 1}, 0.2);
  const Quat b = Quat::fromAxisAngle({0, 0, 1}, 1.4);
  EXPECT_NEAR(angularDistance(slerp(a, b, 0.0), a), 0.0, 1e-9);
  EXPECT_NEAR(angularDistance(slerp(a, b, 1.0), b), 0.0, 1e-9);
}

TEST(Slerp, ConstantAngularVelocity) {
  const Quat a;
  const Quat b = Quat::fromAxisAngle({0, 1, 0}, 2.0);
  double prev = 0.0;
  for (int i = 1; i <= 4; ++i) {
    const double t = i / 4.0;
    const double d = angularDistance(a, slerp(a, b, t));
    EXPECT_NEAR(d - prev, 0.5, 1e-9);  // equal increments of 2.0/4
    prev = d;
  }
}

TEST(Slerp, TakesShortArc) {
  const Quat a = Quat::fromAxisAngle({0, 0, 1}, 0.1);
  // The negated quaternion represents the same rotation; slerp must not
  // take the long way around.
  const Quat b = Quat::fromAxisAngle({0, 0, 1}, 0.3);
  const Quat bneg{-b.w, -b.x, -b.y, -b.z};
  const Quat mid = slerp(a, bneg, 0.5);
  EXPECT_NEAR(angularDistance(a, mid), 0.1, 1e-9);
}

TEST(Nlerp, EndpointsAndUnitNorm) {
  const Quat a = Quat::fromAxisAngle({1, 0, 0}, 0.4);
  const Quat b = Quat::fromAxisAngle({1, 0, 0}, 1.0);
  for (const double t : {0.0, 0.3, 0.5, 0.9, 1.0}) {
    EXPECT_NEAR(nlerp(a, b, t).norm(), 1.0, 1e-12);
  }
  EXPECT_NEAR(angularDistance(nlerp(a, b, 1.0), b), 0.0, 1e-9);
}

TEST(AngularDistance, SymmetricAndZeroOnSelf) {
  const Quat a = Quat::fromEuler(0.1, 0.2, 0.3);
  const Quat b = Quat::fromEuler(-0.4, 0.5, -0.6);
  EXPECT_NEAR(angularDistance(a, a), 0.0, 1e-9);
  EXPECT_NEAR(angularDistance(a, b), angularDistance(b, a), 1e-12);
}

TEST(Quat, NormalizedHandlesZero) {
  const Quat z{0, 0, 0, 0};
  EXPECT_EQ(z.normalized(), Quat{});
}

}  // namespace
}  // namespace cod::math
