// The userspace impairment layer the multi-process UDP soak rides on:
// loss/duplication/reordering/delay injected above a real (here: recorded)
// transport, under a test-controlled clock.
#include "net/impair.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

namespace cod::net {
namespace {

/// Inner transport that records everything the impairment layer lets
/// through, in arrival order.
class RecordingTransport final : public Transport {
 public:
  struct Sent {
    bool broadcast = false;
    NodeAddr dst;
    std::uint16_t port = 0;
    std::vector<std::uint8_t> bytes;
  };

  NodeAddr localAddress() const override { return {0, 0}; }
  void send(const NodeAddr& dst, std::span<const std::uint8_t> bytes) override {
    sent.push_back({false, dst, 0, {bytes.begin(), bytes.end()}});
  }
  void broadcast(std::uint16_t port,
                 std::span<const std::uint8_t> bytes) override {
    sent.push_back({true, {}, port, {bytes.begin(), bytes.end()}});
  }
  std::optional<Datagram> receive() override {
    if (inbound.empty()) return std::nullopt;
    Datagram d = std::move(inbound.back());
    inbound.pop_back();
    return d;
  }
  const TransportStats* stats() const override { return &stats_; }

  std::vector<Sent> sent;
  std::vector<Datagram> inbound;
  TransportStats stats_;
};

struct Rig {
  explicit Rig(ImpairmentConfig cfg) {
    auto recorder = std::make_unique<RecordingTransport>();
    inner = recorder.get();
    impaired = std::make_unique<ImpairedTransport>(
        std::move(recorder), cfg, [this] { return clockSec; });
  }
  std::vector<std::uint8_t> payload(std::uint8_t b) { return {b}; }

  RecordingTransport* inner = nullptr;
  std::unique_ptr<ImpairedTransport> impaired;
  double clockSec = 0.0;
};

TEST(ImpairedTransport, CleanConfigPassesEverythingThroughImmediately) {
  Rig rig({});
  rig.impaired->send({1, 2}, rig.payload(7));
  ASSERT_EQ(rig.inner->sent.size(), 1u);
  EXPECT_EQ(rig.inner->sent[0].dst, (NodeAddr{1, 2}));
  EXPECT_EQ(rig.inner->sent[0].bytes, rig.payload(7));
  rig.impaired->broadcast(3, rig.payload(9));
  ASSERT_EQ(rig.inner->sent.size(), 2u);
  EXPECT_TRUE(rig.inner->sent[1].broadcast);
  EXPECT_EQ(rig.inner->sent[1].port, 3);
  EXPECT_EQ(rig.impaired->heldCount(), 0u);

  rig.inner->inbound.push_back(Datagram{{1, 2}, {0, 0}, rig.payload(5)});
  const auto d = rig.impaired->receive();
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload, rig.payload(5));
  // The impairment layer exposes the inner transport's counters untouched.
  EXPECT_EQ(rig.impaired->stats(), rig.inner->stats());
}

TEST(ImpairedTransport, LossRateTracksConfiguredProbability) {
  ImpairmentConfig cfg;
  cfg.lossPct = 30.0;
  cfg.seed = 7;
  Rig rig(cfg);
  const int n = 20000;
  for (int i = 0; i < n; ++i) rig.impaired->send({1, 0}, rig.payload(1));
  const ImpairmentStats& st = rig.impaired->impairmentStats();
  EXPECT_EQ(st.offered, static_cast<std::uint64_t>(n));
  EXPECT_EQ(st.dropped + rig.inner->sent.size(), static_cast<std::uint64_t>(n));
  EXPECT_NEAR(st.injectedLossPct(), 30.0, 1.5);
}

TEST(ImpairedTransport, DelayedDatagramsReleaseOnTheClock) {
  ImpairmentConfig cfg;
  cfg.delayMinSec = 0.010;
  cfg.delayMaxSec = 0.020;
  Rig rig(cfg);
  rig.impaired->send({1, 0}, rig.payload(1));
  EXPECT_TRUE(rig.inner->sent.empty());
  EXPECT_EQ(rig.impaired->heldCount(), 1u);

  rig.clockSec = 0.005;  // before the minimum delay: still held
  rig.impaired->pump();
  EXPECT_TRUE(rig.inner->sent.empty());

  rig.clockSec = 0.020;  // past the maximum: must be out
  rig.impaired->pump();
  ASSERT_EQ(rig.inner->sent.size(), 1u);
  EXPECT_EQ(rig.impaired->heldCount(), 0u);
  EXPECT_EQ(rig.impaired->impairmentStats().delayed, 1u);
}

TEST(ImpairedTransport, ReceivePumpsTheReleaseQueue) {
  ImpairmentConfig cfg;
  cfg.delayMinSec = 0.010;
  Rig rig(cfg);
  rig.impaired->send({1, 0}, rig.payload(1));
  EXPECT_TRUE(rig.inner->sent.empty());
  rig.clockSec = 0.015;
  // The CB's tick polls receive() even when nothing is inbound — that
  // poll is what drains due datagrams without a dedicated timer.
  EXPECT_FALSE(rig.impaired->receive().has_value());
  EXPECT_EQ(rig.inner->sent.size(), 1u);
}

TEST(ImpairedTransport, ReorderedDatagramsAreOvertaken) {
  ImpairmentConfig cfg;
  cfg.reorderPct = 50.0;
  cfg.reorderHoldSec = 0.02;
  cfg.seed = 3;
  Rig rig(cfg);
  const int n = 100;
  for (int i = 0; i < n; ++i)
    rig.impaired->send({1, 0}, rig.payload(static_cast<std::uint8_t>(i)));
  rig.clockSec = 1.0;
  rig.impaired->pump();
  ASSERT_EQ(rig.inner->sent.size(), static_cast<std::size_t>(n));
  EXPECT_GT(rig.impaired->impairmentStats().reordered, 0u);

  std::vector<std::uint8_t> order;
  for (const auto& s : rig.inner->sent) order.push_back(s.bytes[0]);
  std::vector<std::uint8_t> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  // Nothing lost (a permutation of what was sent)...
  for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[i], i);
  // ...but held datagrams were overtaken by later immediate ones.
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

TEST(ImpairedTransport, DuplicatesEmitATrailingCopy) {
  ImpairmentConfig cfg;
  cfg.duplicatePct = 100.0;
  cfg.reorderHoldSec = 0.02;
  Rig rig(cfg);
  rig.impaired->send({1, 0}, rig.payload(4));
  ASSERT_EQ(rig.inner->sent.size(), 1u);  // the original leaves now
  rig.clockSec = 0.05;
  rig.impaired->pump();
  ASSERT_EQ(rig.inner->sent.size(), 2u);  // the copy trails it
  EXPECT_EQ(rig.inner->sent[0].bytes, rig.inner->sent[1].bytes);
  EXPECT_EQ(rig.impaired->impairmentStats().duplicated, 1u);
}

TEST(ImpairedTransport, BroadcastImpairedAsOneEvent) {
  ImpairmentConfig cfg;
  cfg.lossPct = 100.0;
  Rig rig(cfg);
  rig.impaired->broadcast(1, rig.payload(1));
  EXPECT_TRUE(rig.inner->sent.empty());
  EXPECT_EQ(rig.impaired->impairmentStats().dropped, 1u);
}

}  // namespace
}  // namespace cod::net
