#include "core/cluster.hpp"

#include <gtest/gtest.h>

namespace cod::core {
namespace {

TEST(CodCluster, AddComputerGrowsTheRack) {
  CodCluster cluster;
  EXPECT_EQ(cluster.size(), 0u);
  auto& a = cluster.addComputer("alpha");
  auto& b = cluster.addComputer("beta");
  EXPECT_EQ(cluster.size(), 2u);
  EXPECT_EQ(a.name(), "alpha");
  EXPECT_EQ(b.name(), "beta");
  EXPECT_EQ(&cluster.cb(0), &a);
  EXPECT_EQ(&cluster.cb(1), &b);
  // Every CB binds the same port on its own host.
  EXPECT_EQ(a.address().port, b.address().port);
  EXPECT_NE(a.address().host, b.address().host);
}

TEST(CodCluster, StepAdvancesVirtualTimeExactly) {
  CodCluster cluster;
  cluster.addComputer("a");
  EXPECT_DOUBLE_EQ(cluster.now(), 0.0);
  cluster.step(0.123);
  EXPECT_NEAR(cluster.now(), 0.123, 1e-12);
  cluster.step(1.0);
  EXPECT_NEAR(cluster.now(), 1.123, 1e-12);
}

TEST(CodCluster, RunUntilStopsAtPredicateOrDeadline) {
  CodCluster cluster;
  cluster.addComputer("a");
  EXPECT_TRUE(cluster.runUntil([&] { return cluster.now() >= 0.5; }, 5.0));
  EXPECT_LT(cluster.now(), 1.0);
  EXPECT_FALSE(cluster.runUntil([] { return false; }, cluster.now() + 0.3));
}

TEST(CodCluster, LateComputerTicksFromCurrentClock) {
  CodCluster cluster;
  cluster.addComputer("early");
  cluster.step(5.0);
  // A computer racked in later must not replay five seconds of timers.
  auto& late = cluster.addComputer("late");
  struct Probe : LogicalProcess {
    Probe() : LogicalProcess("probe") {}
    double firstStepAt = -1.0;
    void step(double now) override {
      if (firstStepAt < 0.0) firstStepAt = now;
    }
  } probe;
  late.attach(probe);
  cluster.step(0.1);
  EXPECT_GE(probe.firstStepAt, 5.0);
}

TEST(CodCluster, LpStepCalledEveryTick) {
  CodCluster::Config cfg;
  cfg.tickIntervalSec = 0.01;
  CodCluster cluster(cfg);
  auto& cb = cluster.addComputer("a");
  struct Counter : LogicalProcess {
    Counter() : LogicalProcess("counter") {}
    int steps = 0;
    void step(double) override { ++steps; }
  } counter;
  cb.attach(counter);
  cluster.step(1.0);
  EXPECT_NEAR(counter.steps, 100, 2);
}

TEST(CodCluster, ConfigControlsLinkModel) {
  CodCluster::Config cfg;
  cfg.link.latencySec = 0.05;  // a very slow LAN
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  struct Lp : LogicalProcess {
    Lp() : LogicalProcess("lp") {}
    int got = 0;
    void reflectAttributeValues(const std::string&, const AttributeSet&,
                                double) override {
      ++got;
    }
  } pub, sub;
  cbA.attach(pub);
  const auto h = cbA.publishObjectClass(pub, "slow");
  cbB.attach(sub);
  const auto sh = cbB.subscribeObjectClass(sub, "slow");
  cluster.runUntil([&] { return cbB.connected(sh); }, 10.0);
  AttributeSet a;
  cbA.updateAttributeValues(h, a, cluster.now());
  cluster.step(0.02);
  EXPECT_EQ(sub.got, 0);  // still in flight on the 50 ms link
  cluster.step(0.1);
  EXPECT_EQ(sub.got, 1);
}

}  // namespace
}  // namespace cod::core
