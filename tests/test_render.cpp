#include "render/rasterizer.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace cod::render {
namespace {

using math::Mat4;
using math::Quat;
using math::Vec3;

TEST(Color, PackAndShade) {
  const Color c{200, 100, 50};
  EXPECT_EQ(c.packed(), 0xC86432u);
  const Color half = c.shaded(0.5);
  EXPECT_EQ(half.r, 100);
  EXPECT_EQ(half.g, 50);
  EXPECT_EQ(half.b, 25);
  const Color full = c.shaded(5.0);  // clamped
  EXPECT_EQ(full.r, 200);
}

TEST(Mesh, BuildersProduceExpectedCounts) {
  EXPECT_EQ(Mesh::box({1, 1, 1}, {})->triangleCount(), 12u);
  EXPECT_EQ(Mesh::cylinder(1, 2, 10, {})->triangleCount(), 40u);
  EXPECT_EQ(Mesh::plane(10, 10, 4, {})->triangleCount(), 32u);
  EXPECT_THROW(Mesh::plane(10, 10, 0, {}), std::invalid_argument);
}

TEST(Scene, PolygonCountTracksVisibility) {
  Scene s;
  const auto a = s.add("a", Mesh::box({1, 1, 1}, {}));
  s.add("b", Mesh::plane(5, 5, 2, {}));
  EXPECT_EQ(s.polygonCount(), 12u + 8u);
  s.setVisible(a, false);
  EXPECT_EQ(s.polygonCount(), 8u);
}

TEST(Camera, SphereCulling) {
  Camera cam;
  cam.lookAt({0, 0, 0}, {10, 0, 0});
  cam.setPerspective(math::deg2rad(50), 4.0 / 3.0, 0.3, 100.0);
  EXPECT_TRUE(cam.sphereVisible({{10, 0, 0}, 1.0}));    // dead ahead
  EXPECT_FALSE(cam.sphereVisible({{-10, 0, 0}, 1.0}));  // behind
  EXPECT_FALSE(cam.sphereVisible({{10, 50, 0}, 1.0}));  // far off-axis
  EXPECT_FALSE(cam.sphereVisible({{500, 0, 0}, 1.0}));  // beyond far plane
  // A big sphere straddling a frustum plane is conservatively visible.
  EXPECT_TRUE(cam.sphereVisible({{10, 8, 0}, 6.0}));
}

TEST(SurroundRig, CoversAbout120Degrees) {
  const SurroundRig rig;
  EXPECT_EQ(rig.channels(), 3u);
  EXPECT_NEAR(math::rad2deg(rig.horizontalCoverage()), 120.0, 15.0);
}

TEST(SurroundRig, ChannelsPointInDifferentDirections) {
  SurroundRig rig;
  rig.setPose({0, 0, 1.7}, Quat{});
  // Probe: a point far to the left is visible only in the left channel.
  const math::Sphere leftPoint{{20, 30, 1.7}, 1.0};
  EXPECT_TRUE(rig.channel(0).sphereVisible(leftPoint));
  EXPECT_FALSE(rig.channel(2).sphereVisible(leftPoint));
  const math::Sphere rightPoint{{20, -30, 1.7}, 1.0};
  EXPECT_FALSE(rig.channel(0).sphereVisible(rightPoint));
  EXPECT_TRUE(rig.channel(2).sphereVisible(rightPoint));
}

TEST(Framebuffer, ClearAndPlotDepthTest) {
  Framebuffer fb(8, 8);
  fb.clear({0, 0, 0});
  EXPECT_DOUBLE_EQ(fb.coverage(), 0.0);
  fb.plot(3, 3, 0.5, {255, 0, 0});
  EXPECT_EQ(fb.pixel(3, 3), 0xFF0000u);
  // A farther fragment loses the depth test.
  fb.plot(3, 3, 0.9, {0, 255, 0});
  EXPECT_EQ(fb.pixel(3, 3), 0xFF0000u);
  // A nearer one wins.
  fb.plot(3, 3, 0.1, {0, 0, 255});
  EXPECT_EQ(fb.pixel(3, 3), 0x0000FFu);
  // Out-of-bounds plots are ignored.
  fb.plot(-1, 0, 0.0, {});
  fb.plot(8, 8, 0.0, {});
  EXPECT_NEAR(fb.coverage(), 1.0 / 64, 1e-12);
}

TEST(Framebuffer, RejectsBadSize) {
  EXPECT_THROW(Framebuffer(0, 10), std::invalid_argument);
}

class RasterizerTest : public ::testing::Test {
 protected:
  RasterizerTest() : fb(64, 48) {
    cam.lookAt({-5, 0, 0}, {0, 0, 0});
    cam.setPerspective(math::deg2rad(60), 4.0 / 3.0, 0.1, 100.0);
  }
  Scene scene;
  Camera cam;
  Framebuffer fb;
  Rasterizer raster;
};

TEST_F(RasterizerTest, DrawsVisibleBox) {
  scene.add("box", Mesh::box({2, 2, 2}, {255, 0, 0}));
  fb.clear({0, 0, 0});
  raster.render(scene, cam, fb);
  EXPECT_GT(raster.stats().trianglesDrawn, 0u);
  EXPECT_GT(raster.stats().pixelsShaded, 0u);
  EXPECT_GT(fb.coverage(), 0.02);
  // The centre pixel shows the box (red-ish, shaded).
  const std::uint32_t centre = fb.pixel(32, 24);
  EXPECT_GT((centre >> 16) & 0xFF, 0u);
}

TEST_F(RasterizerTest, CullsObjectsOutsideFrustum) {
  scene.add("behind", Mesh::box({2, 2, 2}, {}),
            Mat4::translation({-20, 0, 0}));
  raster.render(scene, cam, fb);
  EXPECT_EQ(raster.stats().objectsCulled, 1u);
  EXPECT_EQ(raster.stats().trianglesDrawn, 0u);
}

TEST_F(RasterizerTest, NearPlaneClippingDoesNotExplode) {
  // A huge ground plane passing through the camera: triangles straddle the
  // near plane and must be clipped, not skipped or smeared.
  scene.add("ground", Mesh::plane(200, 200, 2, {0, 255, 0}),
            Mat4::translation({0, 0, -1.0}));
  fb.clear({0, 0, 0});
  raster.render(scene, cam, fb);
  EXPECT_GT(fb.coverage(), 0.2);  // lower half of the screen is ground
}

TEST_F(RasterizerTest, NearerObjectOccludesFarther) {
  scene.add("far", Mesh::box({4, 4, 4}, {0, 0, 255}),
            Mat4::translation({5, 0, 0}));
  scene.add("near", Mesh::box({1, 1, 1}, {255, 0, 0}),
            Mat4::translation({0, 0, 0}));
  fb.clear({0, 0, 0});
  raster.render(scene, cam, fb);
  const std::uint32_t centre = fb.pixel(32, 24);
  EXPECT_GT((centre >> 16) & 0xFF, centre & 0xFF);  // red in front of blue
}

TEST_F(RasterizerTest, StatsAccumulateAcrossFrames) {
  scene.add("box", Mesh::box({2, 2, 2}, {}));
  raster.render(scene, cam, fb);
  const auto first = raster.stats().trianglesSubmitted;
  raster.render(scene, cam, fb);
  EXPECT_EQ(raster.stats().trianglesSubmitted, 2 * first);
  raster.resetStats();
  EXPECT_EQ(raster.stats().trianglesSubmitted, 0u);
}

TEST_F(RasterizerTest, FrameCostScalesWithPolygons) {
  scene.add("fine", Mesh::plane(10, 10, 32, {}),
            Mat4::rigid(Quat::fromAxisAngle({0, 1, 0}, math::kPi / 2),
                        {2, 0, 0}));
  raster.render(scene, cam, fb);
  const auto fine = raster.stats().trianglesDrawn;
  EXPECT_GT(fine, 500u);
}

TEST(Ppm, WriteProducesParsableFile) {
  Framebuffer fb(4, 2);
  fb.clear({1, 2, 3});
  const std::string path = ::testing::TempDir() + "/cod_test.ppm";
  ASSERT_TRUE(fb.writePpm(path));
  FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char magic[3] = {};
  ASSERT_EQ(std::fscanf(f, "%2s", magic), 1);
  EXPECT_STREQ(magic, "P6");
  int w = 0, h = 0, maxv = 0;
  ASSERT_EQ(std::fscanf(f, "%d %d %d", &w, &h, &maxv), 3);
  EXPECT_EQ(w, 4);
  EXPECT_EQ(h, 2);
  EXPECT_EQ(maxv, 255);
  std::fgetc(f);  // single whitespace after the header
  unsigned char rgb[3];
  ASSERT_EQ(std::fread(rgb, 1, 3, f), 3u);
  EXPECT_EQ(rgb[0], 1);
  EXPECT_EQ(rgb[1], 2);
  EXPECT_EQ(rgb[2], 3);
  std::fclose(f);
}

}  // namespace
}  // namespace cod::render
