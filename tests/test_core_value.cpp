#include "core/value.hpp"

#include <gtest/gtest.h>

namespace cod::core {
namespace {

TEST(AttributeValue, TypedAccessors) {
  EXPECT_TRUE(AttributeValue(true).asBool());
  EXPECT_EQ(AttributeValue(42).asInt(), 42);
  EXPECT_DOUBLE_EQ(AttributeValue(3.5).asDouble(), 3.5);
  EXPECT_EQ(AttributeValue("hi").asString(), "hi");
  EXPECT_EQ(AttributeValue(math::Vec3{1, 2, 3}).asVec3(), math::Vec3(1, 2, 3));
  const std::vector<std::uint8_t> blob{9, 8};
  EXPECT_EQ(AttributeValue(blob).asBlob(), blob);
}

TEST(AttributeValue, NumericCoercion) {
  EXPECT_DOUBLE_EQ(AttributeValue(7).asDouble(), 7.0);
  EXPECT_EQ(AttributeValue(7.9).asInt(), 7);
  EXPECT_TRUE(AttributeValue(1).asBool());
  EXPECT_FALSE(AttributeValue(0).asBool());
  EXPECT_EQ(AttributeValue(true).asInt(), 1);
}

TEST(AttributeValue, FallbacksOnWrongType) {
  const AttributeValue s("text");
  EXPECT_DOUBLE_EQ(s.asDouble(9.0), 9.0);
  EXPECT_EQ(s.asInt(5), 5);
  EXPECT_EQ(s.asVec3({1, 1, 1}), math::Vec3(1, 1, 1));
  EXPECT_TRUE(AttributeValue(1.0).asString().empty());
}

TEST(AttributeValue, TypePredicates) {
  EXPECT_TRUE(AttributeValue(true).isBool());
  EXPECT_TRUE(AttributeValue(1).isInt());
  EXPECT_TRUE(AttributeValue(1.0).isDouble());
  EXPECT_TRUE(AttributeValue("x").isString());
  EXPECT_TRUE(AttributeValue(math::Vec3{}).isVec3());
  EXPECT_TRUE(AttributeValue(std::vector<std::uint8_t>{1}).isBlob());
  EXPECT_FALSE(AttributeValue(1).isDouble());
}

TEST(AttributeValue, EncodeDecodeAllTypes) {
  const AttributeValue values[] = {
      AttributeValue(true),
      AttributeValue(false),
      AttributeValue(std::int64_t{-123456789}),
      AttributeValue(2.718281828),
      AttributeValue(std::string("a string")),
      AttributeValue(math::Vec3{-1.5, 2.5, 3.5}),
      AttributeValue(std::vector<std::uint8_t>{0, 1, 2, 255}),
  };
  for (const AttributeValue& v : values) {
    net::WireWriter w;
    v.encode(w);
    net::WireReader r(w.bytes());
    const auto decoded = AttributeValue::decode(r);
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(*decoded, v);
  }
}

TEST(AttributeValue, DecodeMalformedFails) {
  const std::vector<std::uint8_t> garbage{200};  // unknown tag
  net::WireReader r(garbage);
  EXPECT_FALSE(AttributeValue::decode(r).has_value());
  net::WireReader empty(std::span<const std::uint8_t>{});
  EXPECT_FALSE(AttributeValue::decode(empty).has_value());
}

TEST(AttributeSet, SetGetHas) {
  AttributeSet a;
  a.set("x", 1.5);
  a.set("name", "crane");
  a.set("on", true);
  EXPECT_TRUE(a.has("x"));
  EXPECT_FALSE(a.has("y"));
  EXPECT_DOUBLE_EQ(a.getDouble("x"), 1.5);
  EXPECT_EQ(a.getString("name"), "crane");
  EXPECT_TRUE(a.getBool("on"));
  EXPECT_EQ(a.size(), 3u);
}

TEST(AttributeSet, FallbacksForMissingKeys) {
  const AttributeSet a;
  EXPECT_DOUBLE_EQ(a.getDouble("missing", 7.5), 7.5);
  EXPECT_EQ(a.getInt("missing", -2), -2);
  EXPECT_EQ(a.getString("missing", "dflt"), "dflt");
  EXPECT_FALSE(a.getBool("missing"));
  EXPECT_EQ(a.getVec3("missing", {1, 2, 3}), math::Vec3(1, 2, 3));
  EXPECT_EQ(a.find("missing"), nullptr);
}

TEST(AttributeSet, OverwriteReplacesValue) {
  AttributeSet a;
  a.set("k", 1);
  a.set("k", 2);
  EXPECT_EQ(a.getInt("k"), 2);
  EXPECT_EQ(a.size(), 1u);
}

TEST(AttributeSet, InitializerListConstruction) {
  const AttributeSet a{{"speed", AttributeValue(3.0)},
                       {"gear", AttributeValue(2)}};
  EXPECT_DOUBLE_EQ(a.getDouble("speed"), 3.0);
  EXPECT_EQ(a.getInt("gear"), 2);
}

TEST(AttributeSet, EncodeDecodeRoundTrip) {
  AttributeSet a;
  a.set("b", true);
  a.set("i", -42);
  a.set("d", 0.125);
  a.set("s", "text");
  a.set("v", math::Vec3{1, -2, 3});
  const auto bytes = a.encode();
  const auto decoded = AttributeSet::decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, a);
}

TEST(AttributeSet, EmptySetRoundTrips) {
  const AttributeSet a;
  const auto decoded = AttributeSet::decode(a.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(AttributeSet, DecodeTruncatedFails) {
  AttributeSet a;
  a.set("key", 1.0);
  auto bytes = a.encode();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(AttributeSet::decode(bytes).has_value());
}

TEST(AttributeSet, IterationIsOrdered) {
  AttributeSet a;
  a.set("zeta", 1);
  a.set("alpha", 2);
  std::vector<std::string> keys;
  for (const auto& [k, v] : a) keys.push_back(k);
  ASSERT_EQ(keys.size(), 2u);
  EXPECT_EQ(keys[0], "alpha");  // std::map ordering, stable on the wire
  EXPECT_EQ(keys[1], "zeta");
}

}  // namespace
}  // namespace cod::core
