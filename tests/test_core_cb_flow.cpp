// Flow-control and backpressure tests of the CB (the adaptive-flow-control
// PR): overflow policies at the publication level (block / degrade), the
// per-channel window split for a lagging subscriber and its re-merge after
// recovery, best-effort thinning via setPeerSendFactor (with the
// control-plane exemption), the adaptive mid-tick flush, the
// BackpressureGovernor's alarm-driven thin/recover state machine — and the
// headline guarantee that arming every flow feature without tripping any
// threshold is byte-identical on the wire to a build with them off.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "net/simnet.hpp"
#include "net/transport.hpp"
#include "telemetry/backpressure.hpp"
#include "telemetry/monitor.hpp"
#include "telemetry/node_telemetry.hpp"

namespace cod::core {
namespace {

class QosPub : public LogicalProcess {
 public:
  QosPub(std::string cls, net::QosClass qos)
      : LogicalProcess("pub"), cls_(std::move(cls)), qos_(qos) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.publishObjectClass(*this, cls_, qos_);
  }
  /// Returns updateAttributeValues' verdict (false: refused by the
  /// kBlockPublisher gate).
  bool send(double value, double ts, std::size_t padBytes = 0) {
    AttributeSet a;
    a.set("v", value);
    if (padBytes > 0)
      a.set("pad", std::vector<std::uint8_t>(padBytes, 0x5A));
    return backbone()->updateAttributeValues(handle, a, ts);
  }
  PublicationHandle handle = kInvalidHandle;

 private:
  std::string cls_;
  net::QosClass qos_;
};

class QosSub : public LogicalProcess {
 public:
  QosSub(std::string cls, net::QosClass qos)
      : LogicalProcess("sub"), cls_(std::move(cls)), qos_(qos) {}
  void bind(CommunicationBackbone& cb) {
    cb.attach(*this);
    handle = cb.subscribeObjectClass(*this, cls_, qos_);
  }
  void reflectAttributeValues(const std::string&, const AttributeSet& attrs,
                              double) override {
    values.push_back(attrs.getDouble("v"));
  }
  SubscriptionHandle handle = kInvalidHandle;
  std::vector<double> values;

 private:
  std::string cls_;
  net::QosClass qos_;
};

// ---- overflow policies ---------------------------------------------------

TEST(CbFlow, BlockPublisherRefusesAtBudgetAndResumesAfterAcks) {
  CodCluster::Config cfg;
  cfg.cb.reliable.sendWindowBytes = 400;  // a couple of padded frames
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kReliableOrdered);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 5.0));
  cbA.setPublicationOverflowPolicy(pub.handle,
                                   net::OverflowPolicy::kBlockPublisher);

  // Back-to-back within one tick: no acks can prune, so the budget fills
  // and the gate refuses the rest — before consuming a sequence number.
  std::vector<double> accepted;
  for (int i = 0; i < 10; ++i)
    if (pub.send(i, cluster.now(), /*padBytes=*/100)) accepted.push_back(i);
  ASSERT_FALSE(accepted.empty());
  ASSERT_LT(accepted.size(), 10u);
  EXPECT_EQ(cbA.stats().reliable.updatesBlocked, 10u - accepted.size());

  // Acks prune the window; the stream resumes with no gap and no loss.
  cluster.step(1.0);
  EXPECT_TRUE(pub.send(100, cluster.now(), /*padBytes=*/100));
  accepted.push_back(100);
  cluster.runUntil([&] { return sub.values.size() >= accepted.size(); },
                   cluster.now() + 10.0);
  ASSERT_EQ(sub.values, accepted);
  EXPECT_EQ(cbB.stats().reliable.gapsAbandoned, 0u);
  EXPECT_EQ(cbA.stats().reliable.sendWindowEvictions, 0u);
}

TEST(CbFlow, DegradeLatestValueAdvertisesSkipsAcrossABlackout) {
  // The degrade policy trades the zero-gap guarantee for bounded memory
  // and freshness: overflow evicts the oldest frames AND proactively
  // orders lagging subscribers past them, instead of waiting for their
  // NACKs to bounce off the evicted window.
  CodCluster::Config cfg;
  cfg.cb.reliable.sendWindowBytes = 400;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("score", net::QosClass::kReliableOrdered);
  pub.bind(cbA);
  QosSub sub("score", net::QosClass::kReliableOrdered);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); }, 5.0));
  cbA.setPublicationOverflowPolicy(pub.handle,
                                   net::OverflowPolicy::kDegradeLatestValue);

  net::LinkModel dead;
  dead.lossRate = 1.0;
  cluster.network().setLink(0, 1, dead);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(pub.send(i, cluster.now(), /*padBytes=*/100));  // never blocks
    cluster.step(0.01);
  }
  cluster.network().setLink(0, 1, net::LinkModel{});
  for (int i = 40; i < 60; ++i) {
    pub.send(i, cluster.now(), /*padBytes=*/100);
    cluster.step(0.01);
  }
  ASSERT_TRUE(cluster.runUntil(
      [&] { return !sub.values.empty() && sub.values.back() == 59.0; },
      cluster.now() + 10.0));
  EXPECT_GT(cbA.stats().reliable.sendWindowEvictions, 0u);
  EXPECT_GT(cbA.stats().reliable.degradeSkipsSent, 0u);
  EXPECT_GT(cbB.stats().reliable.gapsAbandoned, 0u);
  // Degraded, not disordered: what does arrive is strictly ascending.
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);
}

// ---- per-channel window split -------------------------------------------

TEST(CbFlow, LaggardGetsPrivateWindowAndRemergesAfterRecovery) {
  CodCluster::Config cfg;
  cfg.cb.reliable.perChannelWindowSplit = true;
  cfg.cb.reliable.splitLagFrames = 8;
  cfg.cb.reliable.splitSustainSec = 0.1;
  cfg.cb.reliable.mergeSustainSec = 0.2;
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  auto& cbC = cluster.addComputer("c");
  QosPub pub("score", net::QosClass::kReliableOrdered);
  pub.bind(cbA);
  QosSub healthy("score", net::QosClass::kReliableOrdered);
  healthy.bind(cbB);
  QosSub laggard("score", net::QosClass::kReliableOrdered);
  laggard.bind(cbC);
  ASSERT_TRUE(cluster.runUntil(
      [&] {
        return cbB.connected(healthy.handle) && cbC.connected(laggard.handle);
      },
      10.0));

  // Blackout a↔c (shorter than the 3 s channel timeout): c's cumulative
  // ack freezes while the stream runs on, so its lag crosses
  // splitLagFrames and sustains — the shared window splits.
  net::LinkModel dead;
  dead.lossRate = 1.0;
  cluster.network().setLink(0, 2, dead);
  for (int i = 0; i < 50; ++i) {
    pub.send(i, cluster.now());
    cluster.step(0.01);
  }
  EXPECT_GE(cbA.stats().reliable.windowSplits, 1u);
  EXPECT_EQ(cbA.stats().reliable.windowMerges, 0u);

  // Heal: c NACK-recovers everything from the private window, catches
  // up, stays caught up past mergeSustainSec — and re-merges.
  cluster.network().setLink(0, 2, net::LinkModel{});
  for (int i = 50; i < 80; ++i) {
    pub.send(i, cluster.now());
    cluster.step(0.01);
  }
  ASSERT_TRUE(cluster.runUntil(
      [&] { return cbA.stats().reliable.windowMerges >= 1u; },
      cluster.now() + 10.0));
  cluster.runUntil(
      [&] { return healthy.values.size() >= 80 && laggard.values.size() >= 80; },
      cluster.now() + 10.0);

  // The split spared neither subscriber a single frame: both streams are
  // complete and in order, including everything published mid-blackout.
  ASSERT_EQ(healthy.values.size(), 80u);
  ASSERT_EQ(laggard.values.size(), 80u);
  for (int i = 0; i < 80; ++i) {
    EXPECT_DOUBLE_EQ(healthy.values[static_cast<std::size_t>(i)], i);
    EXPECT_DOUBLE_EQ(laggard.values[static_cast<std::size_t>(i)], i);
  }
  EXPECT_EQ(cbC.stats().reliable.gapsAbandoned, 0u);
}

// ---- best-effort thinning ------------------------------------------------

TEST(CbFlow, PeerSendFactorThinsBestEffortOnlyAndRestores) {
  CodCluster cluster{CodCluster::Config{}};
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub be("be.x", net::QosClass::kBestEffort);
  be.bind(cbA);
  QosPub rel("rel.x", net::QosClass::kReliableOrdered);
  rel.bind(cbA);
  QosSub beSub("be.x", net::QosClass::kBestEffort);
  beSub.bind(cbB);
  QosSub relSub("rel.x", net::QosClass::kReliableOrdered);
  relSub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil(
      [&] {
        return cbB.connected(beSub.handle) && cbB.connected(relSub.handle);
      },
      10.0));

  cbA.setPeerSendFactor(cbB.address(), 0.25);
  for (int i = 0; i < 200; ++i) {
    be.send(i, cluster.now());
    rel.send(i, cluster.now());
    cluster.step(0.005);
  }
  cluster.runUntil([&] { return relSub.values.size() >= 200; },
                   cluster.now() + 10.0);
  cluster.step(0.2);  // let the last best-effort datagrams land
  // Reliable: never thinned — ordering contract intact.
  ASSERT_EQ(relSub.values.size(), 200u);
  // Best effort at factor 0.25 on a lossless LAN: exactly every 4th
  // update leaves (the thin-debt accumulator skips 3 in 4, evenly).
  EXPECT_EQ(beSub.values.size(), 50u);
  EXPECT_EQ(cbA.stats().updatesThinned, 150u);

  // Factor 1 restores full rate for subsequent updates.
  cbA.setPeerSendFactor(cbB.address(), 1.0);
  for (int i = 200; i < 240; ++i) {
    be.send(i, cluster.now());
    cluster.step(0.005);
  }
  cluster.step(0.1);
  EXPECT_EQ(beSub.values.size(), 90u);
  EXPECT_EQ(cbA.stats().updatesThinned, 150u);
}

TEST(CbFlow, ThinningExemptPublicationKeepsFullRate) {
  // The exemption exists for control-plane streams (telemetry itself):
  // thinning the feed that closes the backpressure loop can phase-lock
  // against the keyframe cadence and blind the monitor it reports to.
  CodCluster cluster{CodCluster::Config{}};
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub be("be.x", net::QosClass::kBestEffort);
  be.bind(cbA);
  QosSub beSub("be.x", net::QosClass::kBestEffort);
  beSub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(beSub.handle); },
                               10.0));
  cbA.setPublicationThinningExempt(be.handle, true);
  cbA.setPeerSendFactor(cbB.address(), 0.25);
  for (int i = 0; i < 100; ++i) {
    be.send(i, cluster.now());
    cluster.step(0.005);
  }
  cluster.step(0.1);
  EXPECT_EQ(beSub.values.size(), 100u);
  EXPECT_EQ(cbA.stats().updatesThinned, 0u);
  EXPECT_THROW(cbA.setPublicationThinningExempt(9999, true),
               std::invalid_argument);
}

// ---- adaptive mid-tick flush --------------------------------------------

TEST(CbFlow, AdaptiveMidTickFlushDrainsHeavyTicks) {
  CodCluster::Config cfg;
  cfg.cb.batch.tickFlushByteBudget = 600;  // well under one burst's bytes
  CodCluster cluster(cfg);
  auto& cbA = cluster.addComputer("a");
  auto& cbB = cluster.addComputer("b");
  QosPub pub("burst.x", net::QosClass::kBestEffort);
  pub.bind(cbA);
  QosSub sub("burst.x", net::QosClass::kBestEffort);
  sub.bind(cbB);
  ASSERT_TRUE(cluster.runUntil([&] { return cbB.connected(sub.handle); },
                               10.0));
  // A whole burst lands inside one tick: without a budget it would pool
  // until the end-of-tick flush and leave as a single back-to-back train.
  for (int i = 0; i < 20; ++i) pub.send(i, cluster.now(), /*padBytes=*/100);
  EXPECT_GT(cbA.stats().batch.adaptiveFlushes, 0u);
  cluster.step(0.5);
  // Nothing thinned, nothing lost: the budget changes timing, not content.
  EXPECT_EQ(sub.values.size(), 20u);
  for (std::size_t i = 1; i < sub.values.size(); ++i)
    EXPECT_LT(sub.values[i - 1], sub.values[i]);
}

// ---- the governor's alarm → send-rate state machine ----------------------

/// MonitorUnit idiom (test_telemetry.cpp): feed the monitor crafted
/// telemetry records directly, then step the governor by hand at chosen
/// clock points — deterministic coverage of thin steps, the floor, the
/// recovery hold and the stepped recovery.
class GovernorUnit : public ::testing::Test {
 protected:
  GovernorUnit() : cluster{CodCluster::Config{}} {
    cb = &cluster.addComputer("local");
    gov.emplace(monitor, telemetry::BackpressureConfig{
                             /*minSendFactor=*/0.4, /*thinStep=*/0.5,
                             /*recoverHoldSec=*/2.0, /*recoverStep=*/2.0,
                             /*recoverIntervalSec=*/0.5});
    gov->bind(*cb);
  }

  telemetry::NodeTelemetry record(const std::string& node, std::uint64_t seq,
                                  double timeSec) {
    telemetry::NodeTelemetry t;
    t.seq = seq;
    t.node = node;
    t.addr = {1, 1};
    t.nodeTimeSec = timeSec;
    return t;
  }

  void feed(const telemetry::NodeTelemetry& t) {
    AttributeSet a;
    a.set(telemetry::kTelemetryAttr, telemetry::encodeTelemetry(t));
    monitor.reflectAttributeValues(telemetry::kTelemetryClass, a,
                                   t.nodeTimeSec);
  }

  CodCluster cluster;
  CommunicationBackbone* cb = nullptr;
  telemetry::HealthMonitor monitor;
  std::optional<telemetry::BackpressureGovernor> gov;
};

TEST_F(GovernorUnit, ThinsOnAlarmOnsetsAndRecoversWithHysteresis) {
  feed(record("peer", 1, 0.0));
  gov->step(0.5);
  EXPECT_EQ(gov->peer("peer"), nullptr);  // healthy: never touched

  // Onset 1: mailbox overflow → one thin step.
  telemetry::NodeTelemetry t2 = record("peer", 2, 1.0);
  t2.cb.mailboxOverflows = 3;
  feed(t2);
  gov->step(1.0);
  ASSERT_NE(gov->peer("peer"), nullptr);
  EXPECT_DOUBLE_EQ(gov->peer("peer")->factor, 0.5);
  EXPECT_EQ(gov->thinSteps(), 1u);

  // Onset 2 (a different trigger kind): floored at minSendFactor, and the
  // overflow's falling edge alone must NOT start recovery — the storm is
  // still active.
  telemetry::NodeTelemetry t3 = record("peer", 3, 2.0);
  t3.cb.mailboxOverflows = 3;  // no growth: overflow clears
  t3.cb.reliable.retransmitsSent = 500;  // storm onset
  t3.cb.reliable.dataFramesSent = 10000;
  feed(t3);
  gov->step(2.0);
  EXPECT_DOUBLE_EQ(gov->peer("peer")->factor, 0.4);  // 0.25 floored at 0.4
  EXPECT_EQ(gov->thinSteps(), 2u);
  gov->step(4.5);  // storm still raised: held down, no recovery
  EXPECT_DOUBLE_EQ(gov->peer("peer")->factor, 0.4);
  EXPECT_EQ(gov->recoverSteps(), 0u);

  // The storm subsides (falling edge) — the hysteresis clock starts at
  // the LAST clear, and recovery is stepped, not a snap back to 1.
  telemetry::NodeTelemetry t4 = record("peer", 4, 3.0);
  t4.cb.mailboxOverflows = 3;
  t4.cb.reliable.retransmitsSent = 500;  // no growth: storm clears
  t4.cb.reliable.dataFramesSent = 20000;
  feed(t4);
  gov->step(5.0);                          // cleared here
  EXPECT_EQ(gov->recoverSteps(), 0u);
  gov->step(6.5);                          // 1.5 < recoverHoldSec
  EXPECT_DOUBLE_EQ(gov->peer("peer")->factor, 0.4);
  gov->step(7.1);                          // past the hold: first step
  EXPECT_DOUBLE_EQ(gov->peer("peer")->factor, 0.8);
  EXPECT_EQ(gov->recoverSteps(), 1u);
  gov->step(7.3);                          // inside recoverIntervalSec
  EXPECT_DOUBLE_EQ(gov->peer("peer")->factor, 0.8);
  gov->step(7.7);                          // second step, capped at 1
  EXPECT_DOUBLE_EQ(gov->peer("peer")->factor, 1.0);
  EXPECT_EQ(gov->recoverSteps(), 2u);
  gov->step(8.5);                          // fully recovered: stable
  EXPECT_EQ(gov->recoverSteps(), 2u);
}

TEST_F(GovernorUnit, NeverThinsTowardItself) {
  // Alarms about the governor's own node (the monitor watches everyone,
  // itself included) must not throttle its own egress.
  telemetry::NodeTelemetry t1 = record("local", 1, 0.0);
  feed(t1);
  telemetry::NodeTelemetry t2 = record("local", 2, 1.0);
  t2.cb.mailboxOverflows = 5;
  feed(t2);
  gov->step(1.0);
  EXPECT_EQ(gov->peer("local"), nullptr);
  EXPECT_EQ(gov->thinSteps(), 0u);
}

// ---- the wire-identity guarantee ----------------------------------------

/// Journal every outbound datagram so two runs compare byte-for-byte
/// (the test_core_cb_shard.cpp idiom).
class TapTransport final : public net::Transport {
 public:
  TapTransport(std::unique_ptr<net::Transport> inner,
               std::vector<std::vector<std::uint8_t>>* log)
      : inner_(std::move(inner)), log_(log) {}

  net::NodeAddr localAddress() const override {
    return inner_->localAddress();
  }
  void send(const net::NodeAddr& dst,
            std::span<const std::uint8_t> bytes) override {
    journal(0, dst.host, dst.port, bytes);
    inner_->send(dst, bytes);
  }
  void broadcast(std::uint16_t port,
                 std::span<const std::uint8_t> bytes) override {
    journal(1, 0, port, bytes);
    inner_->broadcast(port, bytes);
  }
  std::optional<net::Datagram> receive() override { return inner_->receive(); }
  const net::TransportStats* stats() const override { return inner_->stats(); }

 private:
  void journal(std::uint8_t kind, net::HostId host, std::uint16_t port,
               std::span<const std::uint8_t> bytes) {
    std::vector<std::uint8_t> entry{kind,
                                    static_cast<std::uint8_t>(host & 0xFF),
                                    static_cast<std::uint8_t>(port & 0xFF)};
    entry.insert(entry.end(), bytes.begin(), bytes.end());
    log_->push_back(std::move(entry));
  }

  std::unique_ptr<net::Transport> inner_;
  std::vector<std::vector<std::uint8_t>>* log_;
};

/// Drive a lossy two-node mesh (reliable + best effort, both directions)
/// and journal every datagram. `armed` switches every flow-control
/// feature on with thresholds no 4-second run can trip.
std::vector<std::vector<std::uint8_t>> runTapped(bool armed) {
  net::SimNetwork net(/*seed=*/17);
  net::LinkModel lossy = net.defaultLink();
  lossy.lossRate = 0.15;  // loss exercises NACK/retransmit/dup-report paths
  net.setDefaultLink(lossy);
  std::vector<std::vector<std::uint8_t>> log;
  const net::HostId h0 = net.addHost("alpha");
  const net::HostId h1 = net.addHost("bravo");
  CommunicationBackbone::Config cfg;
  if (armed) {
    cfg.reliable.sendWindowBytes = 1u << 20;  // never filled
    cfg.reliable.overflowPolicy = net::OverflowPolicy::kBlockPublisher;
    cfg.reliable.perChannelWindowSplit = true;
    cfg.reliable.splitLagFrames = 1u << 20;  // never lagged that far
    cfg.batch.tickFlushByteBudget = 1u << 20;  // never crossed in a tick
  }
  CommunicationBackbone cbA(
      "alpha", std::make_unique<TapTransport>(net.bind(h0, 1), &log), cfg);
  CommunicationBackbone cbB(
      "bravo", std::make_unique<TapTransport>(net.bind(h1, 1), &log), cfg);

  QosPub pa("flow.rel", net::QosClass::kReliableOrdered);
  pa.bind(cbA);
  QosPub pb("flow.be", net::QosClass::kBestEffort);
  pb.bind(cbB);
  QosSub sb("flow.rel", net::QosClass::kReliableOrdered);
  sb.bind(cbB);
  QosSub sa("flow.be", net::QosClass::kBestEffort);
  sa.bind(cbA);

  int i = 0;
  for (double t = 0.0; t < 4.0; t += 0.005) {
    net.advance(0.005);
    if (++i % 4 == 0) {
      pa.send(i, t);
      pb.send(-i, t);
    }
    cbA.tick(net.now());
    cbB.tick(net.now());
  }
  return log;
}

TEST(CbFlow, ArmedButIdleFlowMachineryIsByteIdenticalToOff) {
  const auto off = runTapped(false);
  ASSERT_FALSE(off.empty());
  const auto armed = runTapped(true);
  ASSERT_EQ(off.size(), armed.size());
  for (std::size_t i = 0; i < off.size(); ++i)
    ASSERT_EQ(off[i], armed[i]) << "datagram " << i;
}

}  // namespace
}  // namespace cod::core
