#include "math/vec.hpp"

#include <gtest/gtest.h>

namespace cod::math {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1, 2}, b{3, -4};
  EXPECT_EQ(a + b, Vec2(4, -2));
  EXPECT_EQ(a - b, Vec2(-2, 6));
  EXPECT_EQ(a * 2.0, Vec2(2, 4));
  EXPECT_EQ(2.0 * a, Vec2(2, 4));
  EXPECT_EQ(-a, Vec2(-1, -2));
}

TEST(Vec2, DotAndCross) {
  const Vec2 a{1, 0}, b{0, 1};
  EXPECT_DOUBLE_EQ(a.dot(b), 0.0);
  EXPECT_DOUBLE_EQ(a.cross(b), 1.0);
  EXPECT_DOUBLE_EQ(b.cross(a), -1.0);
}

TEST(Vec2, NormAndNormalize) {
  const Vec2 v{3, 4};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.norm2(), 25.0);
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_EQ(Vec2{}.normalized(), Vec2{});  // zero vector stays zero
}

TEST(Vec3, Arithmetic) {
  Vec3 a{1, 2, 3};
  const Vec3 b{4, 5, 6};
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  a += b;
  EXPECT_EQ(a, Vec3(5, 7, 9));
  a *= 2.0;
  EXPECT_EQ(a, Vec3(10, 14, 18));
  a /= 2.0;
  EXPECT_EQ(a, Vec3(5, 7, 9));
}

TEST(Vec3, CrossFollowsRightHandRule) {
  const Vec3 x{1, 0, 0}, y{0, 1, 0}, z{0, 0, 1};
  EXPECT_EQ(x.cross(y), z);
  EXPECT_EQ(y.cross(z), x);
  EXPECT_EQ(z.cross(x), y);
  EXPECT_EQ(y.cross(x), -z);
}

TEST(Vec3, CrossIsOrthogonal) {
  const Vec3 a{1.2, -3.4, 0.7}, b{0.3, 2.2, -5.0};
  const Vec3 c = a.cross(b);
  EXPECT_NEAR(c.dot(a), 0.0, 1e-12);
  EXPECT_NEAR(c.dot(b), 0.0, 1e-12);
}

TEST(Vec3, ComponentwiseMinMax) {
  const Vec3 a{1, 5, -2}, b{3, 2, -7};
  EXPECT_EQ(a.cwiseMin(b), Vec3(1, 2, -7));
  EXPECT_EQ(a.cwiseMax(b), Vec3(3, 5, -2));
}

TEST(Vec3, IndexOperator) {
  const Vec3 v{7, 8, 9};
  EXPECT_DOUBLE_EQ(v[0], 7);
  EXPECT_DOUBLE_EQ(v[1], 8);
  EXPECT_DOUBLE_EQ(v[2], 9);
}

TEST(Vec4, DotAndXyz) {
  const Vec4 a{1, 2, 3, 4};
  const Vec4 b{5, 6, 7, 8};
  EXPECT_DOUBLE_EQ(a.dot(b), 5 + 12 + 21 + 32);
  EXPECT_EQ(a.xyz(), Vec3(1, 2, 3));
  EXPECT_EQ(Vec4(Vec3(1, 2, 3), 4.0), a);
}

TEST(Lerp, Scalars) {
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(lerp(0.0, 10.0, 0.25), 2.5);
}

TEST(Lerp, Vectors) {
  EXPECT_EQ(lerp(Vec3(0, 0, 0), Vec3(2, 4, 6), 0.5), Vec3(1, 2, 3));
  EXPECT_EQ(lerp(Vec2(0, 0), Vec2(2, 4), 0.5), Vec2(1, 2));
}

TEST(Clamp, Bounds) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

TEST(Angles, DegRadRoundTrip) {
  EXPECT_NEAR(rad2deg(deg2rad(123.4)), 123.4, 1e-12);
  EXPECT_NEAR(deg2rad(180.0), kPi, 1e-15);
}

TEST(Angles, WrapAngleRange) {
  for (double a = -25.0; a < 25.0; a += 0.37) {
    const double w = wrapAngle(a);
    EXPECT_GT(w, -kPi - 1e-12) << a;
    EXPECT_LE(w, kPi + 1e-12) << a;
    // Wrapped angle equals the original modulo 2*pi.
    EXPECT_NEAR(std::sin(w), std::sin(a), 1e-9) << a;
    EXPECT_NEAR(std::cos(w), std::cos(a), 1e-9) << a;
  }
}

TEST(Angles, AngleDiffShortestPath) {
  EXPECT_NEAR(angleDiff(0.1, -0.1), 0.2, 1e-12);
  EXPECT_NEAR(angleDiff(-0.1, 0.1), -0.2, 1e-12);
  // Across the wrap point: 179 deg vs -179 deg differ by 2 deg.
  EXPECT_NEAR(angleDiff(deg2rad(179), deg2rad(-179)), deg2rad(-2), 1e-9);
}

/// Property sweep: wrapAngle is idempotent.
class WrapAngleProperty : public ::testing::TestWithParam<double> {};

TEST_P(WrapAngleProperty, Idempotent) {
  const double a = GetParam();
  EXPECT_NEAR(wrapAngle(wrapAngle(a)), wrapAngle(a), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WrapAngleProperty,
                         ::testing::Values(-100.0, -7.5, -kPi, -0.1, 0.0, 0.1,
                                           kPi, 7.5, 100.0));

}  // namespace
}  // namespace cod::math
