#include "platform/motion_cueing.hpp"
#include "platform/stewart.hpp"

#include <gtest/gtest.h>

namespace cod::platform {
namespace {

using math::Quat;
using math::Vec3;

TEST(Stewart, HomePoseIsReachableWithEqualLegs) {
  const StewartPlatform sp;
  const LegSolution sol = sp.inverseKinematics(sp.homePose());
  EXPECT_TRUE(sol.reachable);
  for (int i = 1; i < 6; ++i)
    EXPECT_NEAR(sol.lengths[i], sol.lengths[0], 1e-9);
  EXPECT_GT(sol.strokeMargin, 0.0);
}

TEST(Stewart, PureHeaveChangesAllLegsEqually) {
  const StewartPlatform sp;
  Pose up = sp.homePose();
  up.position.z += 0.1;
  const LegSolution home = sp.inverseKinematics(sp.homePose());
  const LegSolution heave = sp.inverseKinematics(up);
  for (int i = 0; i < 6; ++i) EXPECT_GT(heave.lengths[i], home.lengths[i]);
  for (int i = 1; i < 6; ++i)
    EXPECT_NEAR(heave.lengths[i] - home.lengths[i],
                heave.lengths[0] - home.lengths[0], 1e-9);
}

TEST(Stewart, RollSplitsLegsSymmetrically) {
  const StewartPlatform sp;
  Pose rolled = sp.homePose();
  rolled.orientation = Quat::fromAxisAngle({1, 0, 0}, 0.1);
  const LegSolution sol = sp.inverseKinematics(rolled);
  const LegSolution home = sp.inverseKinematics(sp.homePose());
  // Some legs extend, others retract; the total change is ~zero.
  double sum = 0.0;
  bool anyLonger = false, anyShorter = false;
  for (int i = 0; i < 6; ++i) {
    const double d = sol.lengths[i] - home.lengths[i];
    sum += d;
    anyLonger |= d > 1e-6;
    anyShorter |= d < -1e-6;
  }
  EXPECT_TRUE(anyLonger);
  EXPECT_TRUE(anyShorter);
  EXPECT_NEAR(sum, 0.0, 0.02);
}

TEST(Stewart, ExtremePoseUnreachable) {
  const StewartPlatform sp;
  Pose crazy = sp.homePose();
  crazy.position.z += 5.0;
  EXPECT_FALSE(sp.reachable(crazy));
  const LegSolution sol = sp.inverseKinematics(crazy);
  EXPECT_LT(sol.strokeMargin, 0.0);
}

TEST(Stewart, ClampToWorkspaceReturnsReachablePose) {
  const StewartPlatform sp;
  Pose crazy = sp.homePose();
  crazy.position.z += 5.0;
  crazy.orientation = Quat::fromAxisAngle({1, 0, 0}, 1.0);
  const Pose clamped = sp.clampToWorkspace(crazy);
  EXPECT_TRUE(sp.reachable(clamped));
  // The clamp moves toward home but keeps the direction of the request.
  EXPECT_GT(clamped.position.z, sp.homePose().position.z);
  // A reachable pose is returned unchanged.
  Pose mild = sp.homePose();
  mild.position.z += 0.05;
  const Pose same = sp.clampToWorkspace(mild);
  EXPECT_NEAR(same.position.z, mild.position.z, 1e-12);
}

TEST(Stewart, AnchorLayoutsAreRings) {
  const StewartGeometry g;
  for (const Vec3& a : g.baseAnchors()) {
    const Vec3 planar{a.x, a.y, 0};
    EXPECT_NEAR(planar.norm(), g.baseRadiusM, 1e-9);
  }
  for (const Vec3& a : g.platformAnchors()) {
    const Vec3 planar{a.x, a.y, 0};
    EXPECT_NEAR(planar.norm(), g.platformRadiusM, 1e-9);
  }
}

TEST(Interpolator, ReachesTargetSmoothly) {
  PoseInterpolator interp(Pose::identity());
  Pose target;
  target.position = {0, 0, 1.0};
  interp.setTarget(target, 1.0);
  // Smoothstep: slow at the ends, fast in the middle, monotone.
  double prevZ = 0.0;
  double maxStep = 0.0;
  for (int i = 0; i < 100; ++i) {
    const Pose p = interp.advance(0.01);
    EXPECT_GE(p.position.z, prevZ - 1e-12);
    maxStep = std::max(maxStep, p.position.z - prevZ);
    prevZ = p.position.z;
  }
  EXPECT_NEAR(prevZ, 1.0, 1e-9);
  // Peak velocity of smoothstep is 1.5x average: step stays below 2x.
  EXPECT_LT(maxStep, 2.0 * 0.01);
}

TEST(Interpolator, RetargetMidFlightIsContinuous) {
  PoseInterpolator interp(Pose::identity());
  Pose t1;
  t1.position = {0, 0, 1.0};
  interp.setTarget(t1, 1.0);
  for (int i = 0; i < 50; ++i) interp.advance(0.01);
  const Vec3 mid = interp.current().position;
  Pose t2;
  t2.position = {0, 0, -1.0};
  interp.setTarget(t2, 1.0);
  // No jump at the retarget instant.
  const Pose p = interp.advance(0.001);
  EXPECT_NEAR(p.position.z, mid.z, 0.01);
}

TEST(Interpolator, SlerpsOrientation) {
  PoseInterpolator interp(Pose::identity());
  Pose target;
  target.orientation = Quat::fromAxisAngle({0, 0, 1}, 1.0);
  interp.setTarget(target, 1.0);
  interp.advance(0.5);
  const double mid = math::angularDistance(Quat{}, interp.current().orientation);
  EXPECT_GT(mid, 0.1);
  EXPECT_LT(mid, 0.9);
  interp.advance(0.5);
  EXPECT_NEAR(
      math::angularDistance(target.orientation, interp.current().orientation),
      0.0, 1e-6);
}

TEST(Washout, ScalesAndDecays) {
  WashoutFilter w;
  const StewartPlatform sp;
  const Pose home = sp.homePose();
  // A sustained 2 m/s^2 surge builds an offset...
  Pose p;
  for (int i = 0; i < 100; ++i) p = w.map(home, 0, 0, 2.0, 0.0, 0.01);
  const double offset = p.position.x - home.position.x;
  EXPECT_GT(offset, 0.001);
  EXPECT_LE(offset, w.params().maxOffsetM + 1e-12);
  // ...which washes out once the acceleration stops.
  for (int i = 0; i < 2000; ++i) p = w.map(home, 0, 0, 0.0, 0.0, 0.01);
  EXPECT_NEAR(p.position.x - home.position.x, 0.0, 0.002);
}

TEST(Washout, TiltTracksVehicleAttitudeWithCap) {
  WashoutFilter w;
  const StewartPlatform sp;
  const Pose p = w.map(sp.homePose(), 0.2, -0.1, 0, 0, 0.01);
  const Vec3 e = p.orientation.toEuler();
  EXPECT_NEAR(e.y, 0.2 * w.params().angleScale, 1e-9);
  EXPECT_NEAR(e.x, -0.1 * w.params().angleScale, 1e-9);
  // Huge attitude is capped.
  const Pose big = w.map(sp.homePose(), 2.0, 0, 0, 0, 0.01);
  EXPECT_LE(big.orientation.toEuler().y, w.params().maxTiltRad + 1e-9);
}

TEST(Vibration, DeterministicSeedAndAmplitude) {
  VibrationGenerator a(0.005, 12.0, 99);
  VibrationGenerator b(0.005, 12.0, 99);
  double maxAbs = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double sa = a.sample(0.005);
    EXPECT_DOUBLE_EQ(sa, b.sample(0.005));
    maxAbs = std::max(maxAbs, std::abs(sa));
  }
  EXPECT_GT(maxAbs, 0.0);
  EXPECT_LT(maxAbs, 0.05);  // bounded rumble
}

TEST(Vibration, DisabledProducesZero) {
  VibrationGenerator v(0.005, 12.0, 1);
  v.setEnabled(false);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(v.sample(0.01), 0.0);
}

TEST(Vibration, IsBandLimited) {
  // The one-pole filter must suppress sample-to-sample jumps relative to
  // raw white noise of the same variance.
  VibrationGenerator v(1.0, 5.0, 7);
  double prev = v.sample(0.001);
  double maxJump = 0.0;
  for (int i = 0; i < 5000; ++i) {
    const double s = v.sample(0.001);
    maxJump = std::max(maxJump, std::abs(s - prev));
    prev = s;
  }
  EXPECT_LT(maxJump, 0.5);  // white noise would jump by ~several sigma
}

}  // namespace
}  // namespace cod::platform
