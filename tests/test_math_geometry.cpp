#include "math/geometry.hpp"

#include <gtest/gtest.h>

#include "math/rng.hpp"

namespace cod::math {
namespace {

TEST(Aabb, FromPointsAndContains) {
  const Vec3 pts[] = {{0, 0, 0}, {1, 2, 3}, {-1, 5, 2}};
  const Aabb box = Aabb::fromPoints(pts);
  EXPECT_EQ(box.lo, Vec3(-1, 0, 0));
  EXPECT_EQ(box.hi, Vec3(1, 5, 3));
  EXPECT_TRUE(box.contains({0, 1, 1}));
  EXPECT_FALSE(box.contains({2, 1, 1}));
}

TEST(Aabb, OverlapSymmetricAndEdgeTouching) {
  const Aabb a{{0, 0, 0}, {1, 1, 1}};
  const Aabb b{{1, 0, 0}, {2, 1, 1}};  // shares the x=1 face
  const Aabb c{{1.01, 0, 0}, {2, 1, 1}};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Aabb, VolumeAndInflate) {
  const Aabb a{{0, 0, 0}, {2, 3, 4}};
  EXPECT_DOUBLE_EQ(a.volume(), 24.0);
  const Aabb b = a.inflated(1.0);
  EXPECT_EQ(b.lo, Vec3(-1, -1, -1));
  EXPECT_EQ(b.hi, Vec3(3, 4, 5));
  EXPECT_DOUBLE_EQ(Aabb{}.volume(), 0.0);  // invalid box
}

TEST(Sphere, FromPointsBoundsAll) {
  Rng rng(42);
  std::vector<Vec3> pts;
  for (int i = 0; i < 64; ++i)
    pts.push_back({rng.uniform(-3, 5), rng.uniform(0, 9), rng.uniform(-2, 2)});
  const Sphere s = Sphere::fromPoints(pts);
  for (const Vec3& p : pts)
    EXPECT_LE((p - s.center).norm(), s.radius + 1e-9);
}

TEST(Sphere, OverlapSphere) {
  const Sphere a{{0, 0, 0}, 1.0};
  const Sphere b{{1.9, 0, 0}, 1.0};
  const Sphere c{{2.1, 0, 0}, 1.0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
}

TEST(Sphere, OverlapAabb) {
  const Sphere s{{0, 0, 0}, 1.0};
  EXPECT_TRUE(s.overlaps(Aabb{{0.5, -1, -1}, {3, 1, 1}}));
  EXPECT_FALSE(s.overlaps(Aabb{{1.5, 1.5, 1.5}, {3, 3, 3}}));
  // Corner case: sphere just reaching a box corner.
  const double d = 1.0 / std::sqrt(3.0);
  EXPECT_TRUE(s.overlaps(Aabb{{d - 1e-9, d - 1e-9, d - 1e-9}, {2, 2, 2}}));
}

TEST(Triangle, NormalAreaCentroid) {
  const Triangle t{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  EXPECT_EQ(t.normal(), Vec3(0, 0, 1));
  EXPECT_DOUBLE_EQ(t.area(), 0.5);
  EXPECT_NEAR(t.centroid().x, 1.0 / 3, 1e-12);
}

TEST(Plane, SignedDistance) {
  const Plane p = Plane::fromPointNormal({0, 0, 2}, {0, 0, 2});
  EXPECT_NEAR(p.signedDistance({0, 0, 5}), 3.0, 1e-12);
  EXPECT_NEAR(p.signedDistance({0, 0, -1}), -3.0, 1e-12);
}

TEST(TriTri, IntersectingCross) {
  const Triangle a{{-1, 0, 0}, {1, 0, 0}, {0, 2, 0}};
  const Triangle b{{0, 1, -1}, {0, 1, 1}, {0, -1, 0}};
  EXPECT_TRUE(triTriIntersect(a, b));
  EXPECT_TRUE(triTriIntersect(b, a));
}

TEST(TriTri, SeparatedCoplanarAndParallel) {
  const Triangle a{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  const Triangle far{{5, 5, 0}, {6, 5, 0}, {5, 6, 0}};
  EXPECT_FALSE(triTriIntersect(a, far));
  const Triangle above{{0, 0, 1}, {1, 0, 1}, {0, 1, 1}};
  EXPECT_FALSE(triTriIntersect(a, above));
}

TEST(TriTri, SharedEdgeCounts) {
  const Triangle a{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}};
  const Triangle b{{0, 0, 0}, {1, 0, 0}, {0, -1, 0}};
  EXPECT_TRUE(triTriIntersect(a, b));
}

TEST(TriTri, CoplanarOverlapping) {
  const Triangle a{{0, 0, 0}, {2, 0, 0}, {0, 2, 0}};
  const Triangle b{{0.5, 0.5, 0}, {1.5, 0.5, 0}, {0.5, 1.5, 0}};
  EXPECT_TRUE(triTriIntersect(a, b));
}

TEST(RayTri, HitAndMiss) {
  const Triangle t{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  double dist = 0;
  EXPECT_TRUE(rayTriIntersect({{0, 0, 5}, {0, 0, -1}}, t, &dist));
  EXPECT_NEAR(dist, 5.0, 1e-12);
  EXPECT_FALSE(rayTriIntersect({{0, 0, 5}, {0, 0, 1}}, t, nullptr));   // away
  EXPECT_FALSE(rayTriIntersect({{5, 5, 5}, {0, 0, -1}}, t, nullptr));  // aside
}

TEST(RayTri, ParallelRayMisses) {
  const Triangle t{{-1, -1, 0}, {1, -1, 0}, {0, 1, 0}};
  EXPECT_FALSE(rayTriIntersect({{0, 0, 1}, {1, 0, 0}}, t, nullptr));
}

TEST(RayAabb, HitFromOutsideAndInside) {
  const Aabb box{{-1, -1, -1}, {1, 1, 1}};
  double t = 0;
  EXPECT_TRUE(rayAabbIntersect({{-5, 0, 0}, {1, 0, 0}}, box, &t));
  EXPECT_NEAR(t, 4.0, 1e-12);
  // Origin inside: tNear clamps to 0.
  EXPECT_TRUE(rayAabbIntersect({{0, 0, 0}, {1, 0, 0}}, box, &t));
  EXPECT_DOUBLE_EQ(t, 0.0);
  EXPECT_FALSE(rayAabbIntersect({{-5, 5, 0}, {1, 0, 0}}, box, nullptr));
  EXPECT_FALSE(rayAabbIntersect({{5, 0, 0}, {1, 0, 0}}, box, nullptr));
}

TEST(ClosestPoint, SegmentEndpointsAndInterior) {
  const Vec3 a{0, 0, 0}, b{10, 0, 0};
  EXPECT_EQ(closestPointOnSegment(a, b, {-5, 3, 0}), a);
  EXPECT_EQ(closestPointOnSegment(a, b, {15, 3, 0}), b);
  EXPECT_EQ(closestPointOnSegment(a, b, {4, 3, 0}), Vec3(4, 0, 0));
}

TEST(SegmentDistance, ParallelCrossingDegenerate) {
  // Parallel segments 2 apart.
  EXPECT_NEAR(
      segmentSegmentDistance({0, 0, 0}, {10, 0, 0}, {0, 2, 0}, {10, 2, 0}),
      2.0, 1e-12);
  // Perpendicular crossing at height 1.
  EXPECT_NEAR(
      segmentSegmentDistance({-1, 0, 0}, {1, 0, 0}, {0, -1, 1}, {0, 1, 1}),
      1.0, 1e-12);
  // Degenerate (point) segments.
  EXPECT_NEAR(segmentSegmentDistance({0, 0, 0}, {0, 0, 0}, {3, 4, 0},
                                     {3, 4, 0}),
              5.0, 1e-12);
}

TEST(PointInPolygon, SquareAndConcave) {
  const Vec2 square[] = {{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  EXPECT_TRUE(pointInPolygon2D({2, 2}, square));
  EXPECT_FALSE(pointInPolygon2D({5, 2}, square));
  // L-shaped concave polygon: the notch is outside.
  const Vec2 ell[] = {{0, 0}, {4, 0}, {4, 2}, {2, 2}, {2, 4}, {0, 4}};
  EXPECT_TRUE(pointInPolygon2D({1, 3}, ell));
  EXPECT_FALSE(pointInPolygon2D({3, 3}, ell));
}

/// Property: two random triangles that are far apart never intersect, and a
/// triangle always intersects a translated copy overlapping it.
TEST(TriTriProperty, RandomizedSeparationAndOverlap) {
  Rng rng(7);
  for (int iter = 0; iter < 200; ++iter) {
    auto randTri = [&](Vec3 offset) {
      return Triangle{offset + Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                    rng.uniform(-1, 1)},
                      offset + Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                    rng.uniform(-1, 1)},
                      offset + Vec3{rng.uniform(-1, 1), rng.uniform(-1, 1),
                                    rng.uniform(-1, 1)}};
    };
    const Triangle a = randTri({0, 0, 0});
    const Triangle far = randTri({10, 10, 10});
    EXPECT_FALSE(triTriIntersect(a, far)) << "iter " << iter;
    // A triangle intersects itself, and a copy shifted a short distance
    // *within its own plane* still overlaps it (coplanar-overlap case).
    EXPECT_TRUE(triTriIntersect(a, a)) << "iter " << iter;
    if (a.area() > 0.05) {
      const Vec3 inPlane = (a.b - a.a).normalized() * 0.01;
      const Triangle shifted{a.a + inPlane, a.b + inPlane, a.c + inPlane};
      EXPECT_TRUE(triTriIntersect(a, shifted)) << "iter " << iter;
    }
  }
}

}  // namespace
}  // namespace cod::math
