// Real-socket smoke tests over 127.0.0.1 (the deployment path; everything
// protocol-level is tested on SimNetwork).
#include "net/udp.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace cod::net {
namespace {

UdpConfig testConfig() {
  UdpConfig cfg;
  cfg.portsPerHost = 4;
  cfg.maxHosts = 4;
  // Kernel-assigned, not constant: parallel test lanes (or a concurrent
  // soak run) must not race each other for a fixed port range.
  cfg.basePort = pickEphemeralBasePort(
      static_cast<std::uint16_t>(cfg.portsPerHost * cfg.maxHosts));
  return cfg;
}

std::optional<Datagram> receiveWithRetry(Transport& t, int attempts = 200) {
  for (int i = 0; i < attempts; ++i) {
    if (auto d = t.receive()) return d;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return std::nullopt;
}

TEST(UdpTransport, SendReceiveLoopback) {
  const UdpConfig cfg = testConfig();
  UdpTransport a(cfg, 0, 0);
  UdpTransport b(cfg, 1, 0);
  const std::vector<std::uint8_t> payload{1, 2, 3, 4, 5};
  a.send({1, 0}, payload);
  const auto d = receiveWithRetry(b);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload, payload);
  EXPECT_EQ(d->src, (NodeAddr{0, 0}));
  EXPECT_EQ(d->dst, (NodeAddr{1, 0}));
}

TEST(UdpTransport, EmulatedBroadcastReachesAllHosts) {
  const UdpConfig cfg = testConfig();
  UdpTransport a(cfg, 0, 1);
  UdpTransport b(cfg, 1, 1);
  UdpTransport c(cfg, 2, 1);
  a.broadcast(1, std::vector<std::uint8_t>{42});
  EXPECT_TRUE(receiveWithRetry(b).has_value());
  EXPECT_TRUE(receiveWithRetry(c).has_value());
  // The sender does not hear its own broadcast.
  EXPECT_FALSE(a.receive().has_value());
}

TEST(UdpTransport, NonBlockingReceiveOnEmpty) {
  UdpTransport a(testConfig(), 3, 0);
  EXPECT_FALSE(a.receive().has_value());
}

TEST(UdpTransport, RejectsOutOfPlanAddresses) {
  const UdpConfig cfg = testConfig();
  EXPECT_THROW(UdpTransport(cfg, 99, 0), std::out_of_range);
  EXPECT_THROW(UdpTransport(cfg, 0, 99), std::out_of_range);
}

TEST(UdpTransport, EphemeralBasePortPlanBindsAndReadsBack) {
  const UdpConfig cfg = testConfig();
  EXPECT_NE(cfg.basePort, 0);
  // The address plan maps onto real ports exactly as computed, confirmed
  // by reading the bound port back from the kernel rather than trusting
  // the arithmetic.
  UdpTransport a(cfg, 2, 3);
  EXPECT_EQ(a.boundUdpPort(),
            cfg.basePort + 2 * cfg.portsPerHost + 3);
  // Every slot of the reserved plan is genuinely bindable.
  UdpTransport b(cfg, 0, 0);
  UdpTransport c(cfg, 3, 3);
  EXPECT_EQ(b.boundUdpPort(), cfg.basePort);
  EXPECT_EQ(c.boundUdpPort(),
            cfg.basePort + 3 * cfg.portsPerHost + 3);
}

TEST(UdpTransport, StatsCount) {
  const UdpConfig cfg = testConfig();
  UdpTransport a(cfg, 0, 2);
  UdpTransport b(cfg, 1, 2);
  a.send({1, 2}, std::vector<std::uint8_t>{1, 2, 3});
  ASSERT_TRUE(receiveWithRetry(b).has_value());
  EXPECT_EQ(a.stats()->packetsSent, 1u);
  EXPECT_EQ(a.stats()->bytesSent, 3u);
  EXPECT_EQ(a.stats()->framesSent, 1u);  // a bare frame counts as one
  EXPECT_EQ(b.stats()->packetsReceived, 1u);
  EXPECT_EQ(b.stats()->framesReceived, 1u);
}

}  // namespace
}  // namespace cod::net
